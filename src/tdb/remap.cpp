#include "tdb/remap.hpp"

#include <algorithm>
#include <numeric>

namespace plt::tdb {

Remap build_remap(const Database& db, Count min_support, ItemOrder order) {
  const auto supports = db.item_supports();

  std::vector<Item> survivors;
  for (Item i = 0; i < supports.size(); ++i)
    if (supports[i] >= min_support && supports[i] > 0) survivors.push_back(i);

  switch (order) {
    case ItemOrder::kById:
      break;  // already ascending by id
    case ItemOrder::kByFreqAscending:
      std::stable_sort(survivors.begin(), survivors.end(),
                       [&](Item a, Item b) {
                         if (supports[a] != supports[b])
                           return supports[a] < supports[b];
                         return a < b;
                       });
      break;
    case ItemOrder::kByFreqDescending:
      std::stable_sort(survivors.begin(), survivors.end(),
                       [&](Item a, Item b) {
                         if (supports[a] != supports[b])
                           return supports[a] > supports[b];
                         return a < b;
                       });
      break;
  }

  Remap remap;
  remap.new_id.assign(supports.size(), 0);
  remap.original.reserve(survivors.size());
  remap.support.reserve(survivors.size());
  for (std::size_t k = 0; k < survivors.size(); ++k) {
    const Item orig = survivors[k];
    remap.new_id[orig] = static_cast<Item>(k + 1);
    remap.original.push_back(orig);
    remap.support.push_back(supports[orig]);
  }
  return remap;
}

Database apply_remap(const Database& db, const Remap& remap) {
  Database out;
  out.reserve(db.size(), db.total_items());
  std::vector<Item> row;
  for (std::size_t i = 0; i < db.size(); ++i) {
    row.clear();
    for (const Item item : db[i]) {
      if (const auto mapped = remap.map(item)) row.push_back(*mapped);
    }
    if (!row.empty()) out.add(row);
  }
  return out;
}

Itemset unmap_itemset(const Remap& remap, const Itemset& mapped) {
  Itemset out;
  out.reserve(mapped.size());
  for (const Item id : mapped) out.push_back(remap.unmap(id));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace plt::tdb
