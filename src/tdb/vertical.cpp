#include "tdb/vertical.hpp"

#include <algorithm>

namespace plt::tdb {

VerticalView::VerticalView(const Database& db) : transactions_(db.size()) {
  const std::size_t alphabet = static_cast<std::size_t>(db.max_item()) + 1;
  std::vector<std::uint64_t> counts(alphabet + 1, 0);
  for (std::size_t t = 0; t < db.size(); ++t)
    for (const Item item : db[t]) counts[item + 1] += 1;
  offsets_.resize(alphabet + 1);
  offsets_[0] = 0;
  for (std::size_t i = 1; i <= alphabet; ++i)
    offsets_[i] = offsets_[i - 1] + counts[i];
  tids_.resize(offsets_[alphabet]);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t t = 0; t < db.size(); ++t)
    for (const Item item : db[t])
      tids_[cursor[item]++] = static_cast<Tid>(t);
}

std::size_t VerticalView::memory_usage() const {
  return tids_.capacity() * sizeof(Tid) +
         offsets_.capacity() * sizeof(std::uint64_t);
}

std::vector<Tid> intersect(std::span<const Tid> a, std::span<const Tid> b) {
  std::vector<Tid> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<Tid> difference(std::span<const Tid> a, std::span<const Tid> b) {
  std::vector<Tid> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace plt::tdb
