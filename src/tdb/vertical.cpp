#include "tdb/vertical.hpp"

#include <algorithm>

#include "kernels/kernels.hpp"
#include "obs/trace.hpp"

namespace plt::tdb {

VerticalView::VerticalView(const Database& db) : transactions_(db.size()) {
  const std::size_t alphabet = static_cast<std::size_t>(db.max_item()) + 1;
  std::vector<std::uint64_t> counts(alphabet + 1, 0);
  for (std::size_t t = 0; t < db.size(); ++t)
    for (const Item item : db[t]) counts[item + 1] += 1;
  offsets_.resize(alphabet + 1);
  offsets_[0] = 0;
  for (std::size_t i = 1; i <= alphabet; ++i)
    offsets_[i] = offsets_[i - 1] + counts[i];
  tids_.resize(offsets_[alphabet]);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t t = 0; t < db.size(); ++t)
    for (const Item item : db[t])
      tids_[cursor[item]++] = static_cast<Tid>(t);
}

std::size_t VerticalView::memory_usage() const {
  return tids_.capacity() * sizeof(Tid) +
         offsets_.capacity() * sizeof(std::uint64_t);
}

std::vector<Tid> intersect(std::span<const Tid> a, std::span<const Tid> b) {
  // Kernel-backed: galloping + block compares instead of std::
  // set_intersection. The +4 slack is the kernel's compress-store
  // contract; resize truncates to the live prefix.
  std::vector<Tid> out(std::min(a.size(), b.size()) + 4);
  const std::size_t n = kernels::active().intersect_sorted(
      a.data(), a.size(), b.data(), b.size(), out.data());
  out.resize(n);
  obs::count_kernel("kernel.intersect_sorted.calls",
                    "kernel.intersect_sorted.bytes",
                    (a.size() + b.size()) * sizeof(Tid));
  return out;
}

std::size_t intersect_count(std::span<const Tid> a, std::span<const Tid> b) {
  obs::count_kernel("kernel.intersect_count.calls",
                    "kernel.intersect_count.bytes",
                    (a.size() + b.size()) * sizeof(Tid));
  return kernels::active().intersect_count(a.data(), a.size(), b.data(),
                                           b.size());
}

std::vector<Tid> difference(std::span<const Tid> a, std::span<const Tid> b) {
  std::vector<Tid> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace plt::tdb
