#include "tdb/stats.hpp"

#include <algorithm>
#include <sstream>

#include "kernels/kernels.hpp"
#include "util/memory.hpp"

namespace plt::tdb {

Stats compute_stats(const Database& db) {
  Stats s;
  s.transactions = db.size();
  s.total_items = db.total_items();
  if (db.empty()) return s;

  s.min_len = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < db.size(); ++i) {
    const std::size_t len = db[i].size();
    s.min_len = std::min(s.min_len, len);
    s.max_len = std::max(s.max_len, len);
    if (len >= s.length_histogram.size()) s.length_histogram.resize(len + 1);
    s.length_histogram[len] += 1;
  }
  s.avg_len = static_cast<double>(s.total_items) /
              static_cast<double>(s.transactions);

  auto supports = db.item_supports();
  std::vector<Count> nonzero;
  nonzero.reserve(supports.size());
  for (const Count c : supports)
    if (c > 0) nonzero.push_back(c);
  s.distinct_items = nonzero.size();
  if (s.distinct_items > 0)
    s.density = s.avg_len / static_cast<double>(s.distinct_items);

  // Gini via the sorted-values formula; the support mass is a kernel
  // reduction (counts are u64, and the sum fits: it equals total_items).
  if (nonzero.size() > 1) {
    std::sort(nonzero.begin(), nonzero.end());
    const auto n = static_cast<double>(nonzero.size());
    const double total = static_cast<double>(
        kernels::active().sum_counts(nonzero.data(), nonzero.size()));
    double weighted = 0.0;
    for (std::size_t i = 0; i < nonzero.size(); ++i)
      weighted += static_cast<double>(i + 1) * static_cast<double>(nonzero[i]);
    s.support_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
  }
  return s;
}

namespace {

// Gini over a support vector, sorted-values formula (matches the global
// Stats computation). Takes ownership of the scratch because it sorts.
double gini_of(std::vector<Count>& nonzero) {
  if (nonzero.size() < 2) return 0.0;
  std::sort(nonzero.begin(), nonzero.end());
  const auto n = static_cast<double>(nonzero.size());
  const double total = static_cast<double>(
      kernels::active().sum_counts(nonzero.data(), nonzero.size()));
  double weighted = 0.0;
  for (std::size_t i = 0; i < nonzero.size(); ++i)
    weighted += static_cast<double>(i + 1) * static_cast<double>(nonzero[i]);
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

// Folds one partition member (a ranked transaction with max rank ==
// s.rank) into the running stats; `support` accumulates per-rank counts
// over the conditional prefix (everything below the top rank).
void fold_member(PartitionStats& s, std::span<const Item> transaction,
                 std::vector<Count>& support) {
  const std::size_t prefix_len = transaction.size() - 1;
  s.transactions += 1;
  s.prefix_items += prefix_len;
  s.max_prefix_len = std::max(s.max_prefix_len, prefix_len);
  for (std::size_t i = 0; i + 1 < transaction.size(); ++i) {
    const Item rank = transaction[i];
    PLT_ASSERT(rank >= 1 && rank < s.rank, "partition member not ranked");
    support[rank - 1] += 1;
  }
}

// Derived fields (averages, density, skew) once every member is folded.
void finish(PartitionStats& s, std::vector<Count>& support) {
  if (s.transactions > 0)
    s.avg_prefix_len = static_cast<double>(s.prefix_items) /
                       static_cast<double>(s.transactions);
  if (s.rank > 1)
    s.density = s.avg_prefix_len / static_cast<double>(s.rank - 1);
  std::vector<Count> nonzero;
  nonzero.reserve(support.size());
  for (const Count c : support)
    if (c > 0) nonzero.push_back(c);
  s.support_gini = gini_of(nonzero);
}

// Max element rather than back(): ranked transactions are sorted
// ascending by contract, but the stats must not silently mis-bucket a
// caller-built database that is not.
Item top_rank(std::span<const Item> transaction) {
  return *std::max_element(transaction.begin(), transaction.end());
}

}  // namespace

PartitionStats compute_partition_stats(const Database& ranked_db,
                                       Rank partition) {
  PLT_ASSERT(partition >= 1, "partition ranks start at 1");
  PartitionStats s;
  s.rank = partition;
  std::vector<Count> support(partition > 0 ? partition - 1 : 0, 0);
  for (std::size_t i = 0; i < ranked_db.size(); ++i) {
    const auto transaction = ranked_db[i];
    if (transaction.empty() || top_rank(transaction) != partition) continue;
    fold_member(s, transaction, support);
  }
  finish(s, support);
  return s;
}

std::vector<PartitionStats> compute_all_partition_stats(
    const Database& ranked_db, Rank max_rank) {
  std::vector<PartitionStats> all(max_rank);
  for (Rank j = 1; j <= max_rank; ++j) all[j - 1].rank = j;
  // Bucket transaction indices by top rank, then fold each partition with
  // one reusable support scratch: O(total items) overall instead of one
  // full scan per partition.
  std::vector<std::vector<std::size_t>> members(max_rank);
  for (std::size_t i = 0; i < ranked_db.size(); ++i) {
    const auto transaction = ranked_db[i];
    if (transaction.empty()) continue;
    const Item top = top_rank(transaction);
    if (top < 1 || top > max_rank) continue;
    members[top - 1].push_back(i);
  }
  std::vector<Count> support(max_rank > 0 ? max_rank - 1 : 0, 0);
  for (Rank j = 1; j <= max_rank; ++j) {
    PartitionStats& s = all[j - 1];
    // Only [0, j-1) can be dirty from earlier partitions: fold_member for
    // partition j writes ranks below j, and partitions are processed in
    // ascending order, so the tail is still zero and finish() may scan it.
    std::fill(support.begin(),
              support.begin() + static_cast<std::ptrdiff_t>(j - 1), 0);
    for (const std::size_t i : members[j - 1])
      fold_member(s, ranked_db[i], support);
    finish(s, support);
  }
  return all;
}

std::string to_string(const Stats& s) {
  std::ostringstream out;
  out << "transactions:   " << s.transactions << '\n'
      << "distinct items: " << s.distinct_items << '\n'
      << "total items:    " << s.total_items << '\n'
      << "length min/avg/max: " << s.min_len << " / " << s.avg_len << " / "
      << s.max_len << '\n'
      << "density:        " << s.density << '\n'
      << "support gini:   " << s.support_gini << '\n';
  return out.str();
}

}  // namespace plt::tdb
