#include "tdb/stats.hpp"

#include <algorithm>
#include <sstream>

#include "kernels/kernels.hpp"
#include "util/memory.hpp"

namespace plt::tdb {

Stats compute_stats(const Database& db) {
  Stats s;
  s.transactions = db.size();
  s.total_items = db.total_items();
  if (db.empty()) return s;

  s.min_len = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < db.size(); ++i) {
    const std::size_t len = db[i].size();
    s.min_len = std::min(s.min_len, len);
    s.max_len = std::max(s.max_len, len);
    if (len >= s.length_histogram.size()) s.length_histogram.resize(len + 1);
    s.length_histogram[len] += 1;
  }
  s.avg_len = static_cast<double>(s.total_items) /
              static_cast<double>(s.transactions);

  auto supports = db.item_supports();
  std::vector<Count> nonzero;
  nonzero.reserve(supports.size());
  for (const Count c : supports)
    if (c > 0) nonzero.push_back(c);
  s.distinct_items = nonzero.size();
  if (s.distinct_items > 0)
    s.density = s.avg_len / static_cast<double>(s.distinct_items);

  // Gini via the sorted-values formula; the support mass is a kernel
  // reduction (counts are u64, and the sum fits: it equals total_items).
  if (nonzero.size() > 1) {
    std::sort(nonzero.begin(), nonzero.end());
    const auto n = static_cast<double>(nonzero.size());
    const double total = static_cast<double>(
        kernels::active().sum_counts(nonzero.data(), nonzero.size()));
    double weighted = 0.0;
    for (std::size_t i = 0; i < nonzero.size(); ++i)
      weighted += static_cast<double>(i + 1) * static_cast<double>(nonzero[i]);
    s.support_gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
  }
  return s;
}

std::string to_string(const Stats& s) {
  std::ostringstream out;
  out << "transactions:   " << s.transactions << '\n'
      << "distinct items: " << s.distinct_items << '\n'
      << "total items:    " << s.total_items << '\n'
      << "length min/avg/max: " << s.min_len << " / " << s.avg_len << " / "
      << s.max_len << '\n'
      << "density:        " << s.density << '\n'
      << "support gini:   " << s.support_gini << '\n';
  return out.str();
}

}  // namespace plt::tdb
