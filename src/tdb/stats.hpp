// Dataset statistics: the knobs that drive mining cost (density, transaction
// lengths, item-frequency skew). Used to verify that synthetic datasets match
// the published characteristics of the FIMI benchmarks they stand in for.
#pragma once

#include <string>
#include <vector>

#include "tdb/database.hpp"

namespace plt::tdb {

struct Stats {
  std::size_t transactions = 0;
  std::size_t distinct_items = 0;
  std::size_t total_items = 0;
  std::size_t min_len = 0;
  std::size_t max_len = 0;
  double avg_len = 0.0;
  /// avg_len / distinct_items: 1.0 means every transaction holds every item.
  double density = 0.0;
  /// Gini coefficient of item supports; 0 = uniform, ->1 = heavily skewed.
  double support_gini = 0.0;
  /// Histogram of transaction lengths (index = length).
  std::vector<std::size_t> length_histogram;
};

Stats compute_stats(const Database& db);

/// Multi-line human-readable rendering.
std::string to_string(const Stats& stats);

/// Statistics of one rank partition (Def 4.1.3): the transactions whose
/// highest rank equals `rank`, described by the conditional prefixes they
/// contribute (the transaction minus its top rank — exactly what CD_rank
/// mines). These are the per-subtree signals the execution planner feeds
/// its cost model, so they are cheap: one pass over the partition.
struct PartitionStats {
  Rank rank = 0;                ///< the partition's top rank
  std::size_t transactions = 0;  ///< vectors whose max rank == rank
  std::size_t prefix_items = 0;  ///< total conditional-prefix positions
  std::size_t max_prefix_len = 0;
  double avg_prefix_len = 0.0;
  /// avg_prefix_len / (rank - 1): 1.0 means every prefix holds every
  /// possible lower rank (a single full path); 0 for rank 1.
  double density = 0.0;
  /// Gini coefficient of the per-rank supports inside the prefixes;
  /// 0 = uniform, ->1 = heavily skewed.
  double support_gini = 0.0;
};

/// Stats for one partition of a *ranked* database (items are ranks; see
/// core::RankedView). O(total items) scan; ranks above `partition` and
/// empty transactions are ignored.
PartitionStats compute_partition_stats(const Database& ranked_db,
                                       Rank partition);

/// All partitions 1..max_rank in one pass over the database. Entry j-1
/// describes partition j and matches compute_partition_stats(db, j).
std::vector<PartitionStats> compute_all_partition_stats(
    const Database& ranked_db, Rank max_rank);

}  // namespace plt::tdb
