// Dataset statistics: the knobs that drive mining cost (density, transaction
// lengths, item-frequency skew). Used to verify that synthetic datasets match
// the published characteristics of the FIMI benchmarks they stand in for.
#pragma once

#include <string>
#include <vector>

#include "tdb/database.hpp"

namespace plt::tdb {

struct Stats {
  std::size_t transactions = 0;
  std::size_t distinct_items = 0;
  std::size_t total_items = 0;
  std::size_t min_len = 0;
  std::size_t max_len = 0;
  double avg_len = 0.0;
  /// avg_len / distinct_items: 1.0 means every transaction holds every item.
  double density = 0.0;
  /// Gini coefficient of item supports; 0 = uniform, ->1 = heavily skewed.
  double support_gini = 0.0;
  /// Histogram of transaction lengths (index = length).
  std::vector<std::size_t> length_histogram;
};

Stats compute_stats(const Database& db);

/// Multi-line human-readable rendering.
std::string to_string(const Stats& stats);

}  // namespace plt::tdb
