// Item remapping: filter infrequent items and renumber the survivors.
// This is the first scan of Algorithm 1 (and of every FIMI-era miner) made
// reusable: all miners in this repo consume the same remapped view, so
// comparisons are apples-to-apples.
#pragma once

#include <optional>
#include <vector>

#include "tdb/database.hpp"

namespace plt::tdb {

/// How surviving items are ordered when assigned new contiguous ids 1..n.
enum class ItemOrder {
  kById,            ///< ascending original id (the paper's lexicographic order)
  kByFreqAscending, ///< least frequent first (FP-growth-reversed convention)
  kByFreqDescending ///< most frequent first
};

struct Remap {
  /// new_id[original] = 1-based new id, or 0 if filtered out.
  std::vector<Item> new_id;
  /// original[new_id - 1] = original item id.
  std::vector<Item> original;
  /// support[new_id - 1] = support of that item in the source database.
  std::vector<Count> support;

  std::size_t alphabet_size() const { return original.size(); }

  /// Maps an original id; returns nullopt if the item was filtered.
  std::optional<Item> map(Item original_id) const {
    if (original_id >= new_id.size() || new_id[original_id] == 0)
      return std::nullopt;
    return new_id[original_id];
  }

  Item unmap(Item mapped_id) const {
    PLT_ASSERT(mapped_id >= 1 && mapped_id <= original.size(),
               "unmap: id out of range");
    return original[mapped_id - 1];
  }
};

/// Computes the remap for `db` at absolute support `min_support`.
Remap build_remap(const Database& db, Count min_support,
                  ItemOrder order = ItemOrder::kById);

/// Applies a remap: drops filtered items, renumbers, re-sorts transactions,
/// and drops transactions that become empty.
Database apply_remap(const Database& db, const Remap& remap);

/// Translates a mined itemset (in remapped ids) back to original ids,
/// sorted ascending.
Itemset unmap_itemset(const Remap& remap, const Itemset& mapped);

}  // namespace plt::tdb
