// Vertical layout (tidsets): each item mapped to the sorted list of
// transaction ids containing it. Substrate for the Eclat/dEclat baselines
// and for vertical-vs-horizontal comparisons (paper §3).
#pragma once

#include <vector>

#include "tdb/database.hpp"

namespace plt::tdb {

class VerticalView {
 public:
  /// Builds tidsets for every item id in [0, db.max_item()].
  explicit VerticalView(const Database& db);

  /// Sorted transaction ids containing `item` (empty span if absent).
  std::span<const Tid> tidset(Item item) const {
    if (item >= offsets_.size() - 1) return {};
    return {tids_.data() + offsets_[item],
            static_cast<std::size_t>(offsets_[item + 1] - offsets_[item])};
  }

  Count support(Item item) const { return tidset(item).size(); }
  std::size_t alphabet_size() const { return offsets_.size() - 1; }
  std::size_t transactions() const { return transactions_; }
  std::size_t memory_usage() const;

 private:
  std::vector<Tid> tids_;
  std::vector<std::uint64_t> offsets_;
  std::size_t transactions_ = 0;
};

/// Sorted-set intersection of two tidsets (kernel-backed: galloping on
/// asymmetric sizes, SIMD block compares otherwise).
std::vector<Tid> intersect(std::span<const Tid> a, std::span<const Tid> b);

/// |intersect(a, b)| without materializing the result — support counting.
std::size_t intersect_count(std::span<const Tid> a, std::span<const Tid> b);

/// Sorted-set difference a \ b (for diffsets).
std::vector<Tid> difference(std::span<const Tid> a, std::span<const Tid> b);

}  // namespace plt::tdb
