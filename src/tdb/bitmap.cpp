#include "tdb/bitmap.hpp"

namespace plt::tdb {

BitmapView::BitmapView(const Database& db)
    : transactions_(db.size()),
      alphabet_(db.max_item()),
      words_(alphabet_ / 64 + 1) {
  bits_.assign(transactions_ * words_, 0);
  for (std::size_t t = 0; t < db.size(); ++t)
    for (const Item item : db[t])
      bits_[t * words_ + word(item)] |= 1ull << bit(item);
}

bool BitmapView::contains_all(std::size_t transaction,
                              std::span<const Item> items) const {
  const auto r = row(transaction);
  for (const Item item : items) {
    if (item > alphabet_) return false;
    if (((r[word(item)] >> bit(item)) & 1u) == 0) return false;
  }
  return true;
}

Count BitmapView::support_of(std::span<const Item> items) const {
  Count total = 0;
  for (std::size_t t = 0; t < transactions_; ++t)
    total += contains_all(t, items);
  return total;
}

std::size_t BitmapView::memory_usage() const {
  return bits_.capacity() * sizeof(std::uint64_t);
}

}  // namespace plt::tdb
