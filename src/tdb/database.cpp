#include "tdb/database.hpp"

#include <algorithm>

namespace plt::tdb {

Database Database::from_transactions(
    const std::vector<std::vector<Item>>& transactions) {
  Database db;
  std::size_t items = 0;
  for (const auto& t : transactions) items += t.size();
  db.reserve(transactions.size(), items);
  for (const auto& t : transactions) db.add(t);
  return db;
}

Database Database::from_rows(
    std::initializer_list<std::initializer_list<Item>> rows) {
  Database db;
  for (const auto& row : rows)
    db.add(std::span<const Item>(row.begin(), row.size()));
  return db;
}

void Database::add(std::span<const Item> items) {
  const std::size_t start = items_.size();
  items_.insert(items_.end(), items.begin(), items.end());
  auto begin = items_.begin() + static_cast<std::ptrdiff_t>(start);
  std::sort(begin, items_.end());
  items_.erase(std::unique(begin, items_.end()), items_.end());
  if (items_.size() > start) max_item_ = std::max(max_item_, items_.back());
  offsets_.push_back(items_.size());
}

std::vector<Count> Database::item_supports() const {
  std::vector<Count> counts(static_cast<std::size_t>(max_item_) + 1, 0);
  for (const Item item : items_) counts[item] += 1;
  return counts;
}

std::size_t Database::memory_usage() const {
  return items_.capacity() * sizeof(Item) +
         offsets_.capacity() * sizeof(std::uint64_t);
}

bool Database::operator==(const Database& other) const {
  return items_ == other.items_ && offsets_ == other.offsets_;
}

void Database::reserve(std::size_t transactions, std::size_t items) {
  offsets_.reserve(transactions + 1);
  items_.reserve(items);
}

}  // namespace plt::tdb
