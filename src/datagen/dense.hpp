// Dense-dataset generators standing in for the FIMI dense benchmarks
// (chess: 3196×75, density ~0.49; mushroom: 8124×119, density ~0.19).
// Dense data = small alphabet, long transactions, strong item correlations —
// the regime where the paper positions both PLT mining modes.
#pragma once

#include <cstdint>

#include "tdb/database.hpp"

namespace plt::datagen {

struct DenseConfig {
  std::size_t transactions = 3000;
  std::size_t items = 75;            ///< alphabet size
  double density = 0.45;             ///< expected fraction of alphabet per row
  /// Number of latent "classes"; rows of a class share a core itemset,
  /// producing the block correlations of chess/mushroom-like data.
  std::size_t classes = 6;
  double core_fraction = 0.5;        ///< fraction of a row drawn from the core
  /// First `universal_items` ids appear in (almost) every row with
  /// probability `universal_probability` — the near-100%-support attributes
  /// that dominate chess/mushroom and make high-support sweeps meaningful.
  std::size_t universal_items = 0;
  double universal_probability = 0.9;
  std::uint64_t seed = 1;
};

tdb::Database generate_dense(const DenseConfig& config);

/// Preset approximating the chess benchmark's shape.
DenseConfig chess_like(std::size_t transactions = 3196,
                       std::uint64_t seed = 7);
/// Preset approximating the mushroom benchmark's shape.
DenseConfig mushroom_like(std::size_t transactions = 8124,
                          std::uint64_t seed = 11);

}  // namespace plt::datagen
