// Markov click-stream session generator: models "web page access habits"
// (paper §1's motivating domain). Pages form a sparse random link graph with
// Zipf-popular hubs; a session is the set of distinct pages visited by a
// random walk with a per-step exit probability.
#pragma once

#include <cstdint>

#include "tdb/database.hpp"

namespace plt::datagen {

struct ClickstreamConfig {
  std::size_t sessions = 10000;
  std::size_t pages = 500;
  std::size_t out_degree = 8;     ///< links per page
  double exit_probability = 0.15; ///< chance each step ends the session
  double hub_exponent = 1.0;      ///< Zipf exponent for link-target popularity
  std::size_t max_session_len = 40;
  std::uint64_t seed = 1;
};

tdb::Database generate_clickstream(const ClickstreamConfig& config);

}  // namespace plt::datagen
