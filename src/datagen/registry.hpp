// Named dataset registry: maps the dataset names used throughout the benches
// and EXPERIMENTS.md ("quest-sparse", "chess-like", ...) to fully-specified
// generator configurations, so every experiment is reproducible by name.
#pragma once

#include <string>
#include <vector>

#include "tdb/database.hpp"

namespace plt::datagen {

struct DatasetSpec {
  std::string name;
  std::string description;
  /// Scale factor multiplies the default transaction count.
  tdb::Database (*generate)(std::size_t transactions, std::uint64_t seed);
  std::size_t default_transactions;
  std::uint64_t default_seed;
};

/// All registered datasets, in a stable order.
const std::vector<DatasetSpec>& dataset_registry();

/// Generates a registered dataset by name at its default size;
/// throws std::out_of_range for unknown names.
tdb::Database make_dataset(const std::string& name);

/// Generates at a custom size/seed.
tdb::Database make_dataset(const std::string& name, std::size_t transactions,
                           std::uint64_t seed);

}  // namespace plt::datagen
