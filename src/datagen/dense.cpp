#include "datagen/dense.hpp"

#include <algorithm>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace plt::datagen {

tdb::Database generate_dense(const DenseConfig& cfg) {
  PLT_ASSERT(cfg.items >= 2, "dense: alphabet too small");
  PLT_ASSERT(cfg.density > 0.0 && cfg.density <= 1.0,
             "dense: density must be in (0,1]");
  Rng rng(cfg.seed);

  // Build per-class cores: random subsets of the alphabet whose size is the
  // core share of the expected row length.
  const auto row_len = std::max<std::size_t>(
      2, static_cast<std::size_t>(cfg.density *
                                  static_cast<double>(cfg.items)));
  const auto core_len = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.core_fraction *
                                  static_cast<double>(row_len)));
  const std::size_t classes = std::max<std::size_t>(1, cfg.classes);

  std::vector<std::vector<Item>> cores(classes);
  std::vector<Item> alphabet(cfg.items);
  for (std::size_t i = 0; i < cfg.items; ++i)
    alphabet[i] = static_cast<Item>(i + 1);
  for (auto& core : cores) {
    auto pool = alphabet;
    rng.shuffle(pool);
    core.assign(pool.begin(),
                pool.begin() + static_cast<std::ptrdiff_t>(core_len));
  }

  const std::size_t universal = std::min(cfg.universal_items, cfg.items);

  tdb::Database db;
  db.reserve(cfg.transactions, cfg.transactions * row_len);
  std::vector<Item> row;
  for (std::size_t t = 0; t < cfg.transactions; ++t) {
    const auto& core = cores[rng.next_below(classes)];
    row.assign(core.begin(), core.end());
    for (std::size_t u = 1; u <= universal; ++u)
      if (rng.next_bool(cfg.universal_probability))
        row.push_back(static_cast<Item>(u));
    // Fill the remainder uniformly from the alphabet; duplicates are removed
    // by Database::add, so keep drawing until the target size is reached.
    std::size_t guard = 0;
    while (row.size() < row_len && guard++ < cfg.items * 4) {
      row.push_back(alphabet[rng.next_below(cfg.items)]);
      std::sort(row.begin(), row.end());
      row.erase(std::unique(row.begin(), row.end()), row.end());
    }
    db.add(row);
  }
  return db;
}

DenseConfig chess_like(std::size_t transactions, std::uint64_t seed) {
  DenseConfig cfg;
  cfg.transactions = transactions;
  cfg.items = 75;
  cfg.density = 0.49;
  cfg.classes = 4;
  cfg.core_fraction = 0.6;
  cfg.universal_items = 12;
  cfg.universal_probability = 0.92;
  cfg.seed = seed;
  return cfg;
}

DenseConfig mushroom_like(std::size_t transactions, std::uint64_t seed) {
  DenseConfig cfg;
  cfg.transactions = transactions;
  cfg.items = 119;
  cfg.density = 0.19;
  cfg.classes = 10;
  cfg.core_fraction = 0.5;
  cfg.universal_items = 6;
  cfg.universal_probability = 0.95;
  cfg.seed = seed;
  return cfg;
}

}  // namespace plt::datagen
