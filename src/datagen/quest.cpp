#include "datagen/quest.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace plt::datagen {

namespace {

struct Pattern {
  std::vector<Item> items;
  double weight = 0.0;
  double corruption = 0.0;  // probability each tail item is dropped
};

// Items inside patterns are picked with a mild skew so some items are far
// more popular than others (as in the Quest generator's Zipf-ish pick).
Item pick_item(Rng& rng, std::size_t universe) {
  // Square the uniform draw: low ids become quadratically more likely.
  const double u = rng.next_double();
  const auto idx =
      static_cast<std::size_t>(u * u * static_cast<double>(universe));
  return static_cast<Item>(std::min(idx, universe - 1) + 1);
}

std::vector<Pattern> make_patterns(const QuestConfig& cfg, Rng& rng) {
  std::vector<Pattern> pool;
  pool.reserve(cfg.patterns);
  std::vector<Item> prev;
  double weight_sum = 0.0;
  for (std::size_t p = 0; p < cfg.patterns; ++p) {
    Pattern pat;
    std::size_t len = std::max<std::size_t>(
        1, static_cast<std::size_t>(rng.next_poisson(cfg.avg_pattern_len)));
    len = std::min(len, cfg.items);
    // Correlated prefix: keep a random fraction (mean = correlation) of the
    // previous pattern.
    if (!prev.empty() && cfg.correlation > 0.0) {
      const auto keep = static_cast<std::size_t>(
          std::min(1.0, rng.next_exponential(cfg.correlation)) *
          static_cast<double>(prev.size()));
      pat.items.assign(prev.begin(),
                       prev.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(keep, prev.size())));
    }
    while (pat.items.size() < len) pat.items.push_back(pick_item(rng, cfg.items));
    std::sort(pat.items.begin(), pat.items.end());
    pat.items.erase(std::unique(pat.items.begin(), pat.items.end()),
                    pat.items.end());
    pat.weight = rng.next_exponential(1.0);
    weight_sum += pat.weight;
    // Corruption level clamped to [0, 1); normal around the mean per paper.
    pat.corruption =
        std::clamp(rng.next_normal(cfg.corruption_mean, 0.1), 0.0, 0.95);
    prev = pat.items;
    pool.push_back(std::move(pat));
  }
  for (auto& pat : pool) pat.weight /= weight_sum;
  return pool;
}

}  // namespace

tdb::Database generate_quest(const QuestConfig& cfg) {
  PLT_ASSERT(cfg.items >= 1, "quest: need a non-empty item universe");
  PLT_ASSERT(cfg.patterns >= 1, "quest: need at least one pattern");
  Rng rng(cfg.seed);
  const auto pool = make_patterns(cfg, rng);

  // Cumulative weights for pattern sampling.
  std::vector<double> cumulative(pool.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    acc += pool[i].weight;
    cumulative[i] = acc;
  }

  tdb::Database db;
  db.reserve(cfg.transactions,
             static_cast<std::size_t>(static_cast<double>(cfg.transactions) *
                                      cfg.avg_transaction_len));
  std::vector<Item> row;
  for (std::size_t t = 0; t < cfg.transactions; ++t) {
    std::size_t target = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(rng.next_poisson(cfg.avg_transaction_len)));
    target = std::min(target, cfg.items);
    row.clear();
    // Fill from weighted patterns, dropping a corrupted suffix of each.
    std::size_t guard = 0;
    while (row.size() < target && guard++ < 64) {
      const double u = rng.next_double() * acc;
      const auto it =
          std::lower_bound(cumulative.begin(), cumulative.end(), u);
      const auto& pat =
          pool[static_cast<std::size_t>(it - cumulative.begin())];
      for (const Item item : pat.items) {
        if (rng.next_bool(pat.corruption)) continue;  // corrupted away
        row.push_back(item);
        if (row.size() >= target) break;
      }
    }
    if (row.empty()) row.push_back(pick_item(rng, cfg.items));
    db.add(row);
  }
  return db;
}

}  // namespace plt::datagen
