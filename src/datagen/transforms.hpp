// Dataset transforms applied after generation:
//   * add_twin_items — plant perfectly co-occurring item pairs (the
//     structure that makes real census-style data like mushroom condense
//     hard under closed-itemset mining: a twin never changes any support,
//     so closures collapse onto their generators).
//   * sample_transactions — uniform transaction sampling (Toivonen-style
//     sample-and-verify experiments).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tdb/database.hpp"

namespace plt::datagen {

/// Returns a database where, for every pair (item, twin), `twin` is added
/// to each transaction containing `item` (and removed from those that do
/// not contain it). Twin ids may be fresh or existing items.
tdb::Database add_twin_items(
    const tdb::Database& db,
    const std::vector<std::pair<Item, Item>>& twins);

/// Uniformly samples each transaction with probability `fraction`.
/// Deterministic in (db, fraction, seed).
tdb::Database sample_transactions(const tdb::Database& db, double fraction,
                                  std::uint64_t seed);

}  // namespace plt::datagen
