#include "datagen/transforms.hpp"

#include <algorithm>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace plt::datagen {

tdb::Database add_twin_items(
    const tdb::Database& db,
    const std::vector<std::pair<Item, Item>>& twins) {
  tdb::Database out;
  out.reserve(db.size(), db.total_items() + db.size() * twins.size());
  std::vector<Item> row;
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto items = db[t];
    row.assign(items.begin(), items.end());
    for (const auto& [item, twin] : twins) {
      PLT_ASSERT(item != twin, "an item cannot twin itself");
      const bool has_item = std::binary_search(items.begin(), items.end(),
                                               item);
      if (has_item) {
        row.push_back(twin);
      } else {
        row.erase(std::remove(row.begin(), row.end(), twin), row.end());
      }
    }
    if (!row.empty()) out.add(row);
  }
  return out;
}

tdb::Database sample_transactions(const tdb::Database& db, double fraction,
                                  std::uint64_t seed) {
  PLT_ASSERT(fraction >= 0.0 && fraction <= 1.0,
             "sampling fraction must be in [0,1]");
  Rng rng(seed);
  tdb::Database out;
  for (std::size_t t = 0; t < db.size(); ++t)
    if (rng.next_bool(fraction)) out.add(db[t]);
  return out;
}

}  // namespace plt::datagen
