// IBM Quest-style synthetic market-basket generator — the process that
// produced the classic T10I4D100K / T40I10D100K FIMI benchmarks
// (Agrawal & Srikant, VLDB'94, §4.1). Substitution note (DESIGN.md): the
// original FIMI files are not shipped; this generator reproduces their
// statistical character (sparse, skewed, correlated patterns).
//
// Process: draw |L| maximal potentially-frequent patterns whose lengths are
// Poisson(avg_pattern_len); successive patterns share a prefix fraction
// (correlation); each pattern has an exponential weight and a corruption
// level. Each transaction draws Poisson(avg_transaction_len) items by
// sampling weighted patterns, dropping corrupted tails, until full.
#pragma once

#include <cstdint>

#include "tdb/database.hpp"
#include "util/rng.hpp"

namespace plt::datagen {

struct QuestConfig {
  std::size_t transactions = 10000;    ///< |D|
  std::size_t items = 1000;            ///< |I| — universe size N
  double avg_transaction_len = 10.0;   ///< T
  double avg_pattern_len = 4.0;        ///< I
  std::size_t patterns = 200;          ///< |L| — candidate pattern pool
  double correlation = 0.5;            ///< prefix kept from previous pattern
  double corruption_mean = 0.5;        ///< mean corruption level
  std::uint64_t seed = 1;
};

/// Generates a database per the config. Deterministic in (config, seed).
tdb::Database generate_quest(const QuestConfig& config);

}  // namespace plt::datagen
