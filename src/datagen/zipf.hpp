// Zipf-skewed independent-item generator: each transaction samples items
// i.i.d. from a Zipf(s) law over the alphabet. Models sparse web/retail data
// with heavy-tailed item popularity but no planted correlations — the
// adversarial case for pattern-growth structures (paper §3's "sparse data"
// discussion).
#pragma once

#include <cstdint>
#include <vector>

#include "tdb/database.hpp"
#include "util/rng.hpp"

namespace plt::datagen {

struct ZipfConfig {
  std::size_t transactions = 10000;
  std::size_t items = 2000;
  double exponent = 1.1;            ///< Zipf exponent s
  double avg_transaction_len = 8.0; ///< Poisson mean
  std::uint64_t seed = 1;
};

tdb::Database generate_zipf(const ZipfConfig& config);

/// Samples from Zipf(s) over ranks 1..n via inverse-CDF on a precomputed
/// cumulative table. Exposed for reuse by the click-stream generator.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);
  /// Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace plt::datagen
