#include "datagen/clickstream.hpp"

#include <algorithm>

#include "datagen/zipf.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace plt::datagen {

tdb::Database generate_clickstream(const ClickstreamConfig& cfg) {
  PLT_ASSERT(cfg.pages >= 2, "clickstream: need at least two pages");
  Rng rng(cfg.seed);
  ZipfSampler popularity(cfg.pages, cfg.hub_exponent);

  // Link graph: each page links to out_degree targets drawn by popularity.
  const std::size_t degree = std::max<std::size_t>(1, cfg.out_degree);
  std::vector<Item> links(cfg.pages * degree);
  for (std::size_t p = 0; p < cfg.pages; ++p)
    for (std::size_t d = 0; d < degree; ++d)
      links[p * degree + d] = static_cast<Item>(popularity.sample(rng));

  tdb::Database db;
  db.reserve(cfg.sessions, cfg.sessions * 8);
  std::vector<Item> session;
  for (std::size_t s = 0; s < cfg.sessions; ++s) {
    session.clear();
    // Entry page by popularity.
    Item page = static_cast<Item>(popularity.sample(rng));
    session.push_back(page);
    while (session.size() < cfg.max_session_len &&
           !rng.next_bool(cfg.exit_probability)) {
      const std::size_t row = static_cast<std::size_t>(page - 1) * degree;
      page = links[row + rng.next_below(degree)];
      session.push_back(page);
    }
    db.add(session);  // the *set* of visited pages; add() deduplicates
  }
  return db;
}

}  // namespace plt::datagen
