#include "datagen/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace plt::datagen {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  PLT_ASSERT(n >= 1, "zipf: empty support");
  cumulative_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r), exponent);
    cumulative_[r - 1] = acc;
  }
  for (double& c : cumulative_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin()) + 1;
}

tdb::Database generate_zipf(const ZipfConfig& cfg) {
  Rng rng(cfg.seed);
  ZipfSampler sampler(cfg.items, cfg.exponent);
  tdb::Database db;
  db.reserve(cfg.transactions,
             static_cast<std::size_t>(static_cast<double>(cfg.transactions) *
                                      cfg.avg_transaction_len));
  std::vector<Item> row;
  for (std::size_t t = 0; t < cfg.transactions; ++t) {
    const auto len = std::max<std::uint64_t>(
        1, rng.next_poisson(cfg.avg_transaction_len));
    row.clear();
    for (std::uint64_t k = 0; k < len; ++k)
      row.push_back(static_cast<Item>(sampler.sample(rng)));
    db.add(row);
  }
  return db;
}

}  // namespace plt::datagen
