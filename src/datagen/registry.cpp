#include "datagen/registry.hpp"

#include <stdexcept>

#include "datagen/clickstream.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "datagen/zipf.hpp"

namespace plt::datagen {

namespace {

tdb::Database gen_quest_sparse(std::size_t transactions, std::uint64_t seed) {
  QuestConfig cfg;  // T10 I4 — the T10I4D100K shape
  cfg.transactions = transactions;
  cfg.items = 870;  // T10I4D100K has ~870 distinct items
  cfg.avg_transaction_len = 10.0;
  cfg.avg_pattern_len = 4.0;
  cfg.patterns = 300;
  cfg.seed = seed;
  return generate_quest(cfg);
}

tdb::Database gen_quest_wide(std::size_t transactions, std::uint64_t seed) {
  QuestConfig cfg;  // T40 I10 — the T40I10D100K shape
  cfg.transactions = transactions;
  cfg.items = 1000;
  cfg.avg_transaction_len = 20.0;
  cfg.avg_pattern_len = 8.0;
  cfg.patterns = 400;
  cfg.seed = seed;
  return generate_quest(cfg);
}

tdb::Database gen_chess_like(std::size_t transactions, std::uint64_t seed) {
  auto cfg = chess_like(transactions, seed);
  return generate_dense(cfg);
}

tdb::Database gen_mushroom_like(std::size_t transactions,
                                std::uint64_t seed) {
  auto cfg = mushroom_like(transactions, seed);
  return generate_dense(cfg);
}

tdb::Database gen_zipf_sparse(std::size_t transactions, std::uint64_t seed) {
  ZipfConfig cfg;
  cfg.transactions = transactions;
  cfg.items = 2000;
  cfg.exponent = 1.1;
  cfg.avg_transaction_len = 8.0;
  cfg.seed = seed;
  return generate_zipf(cfg);
}

tdb::Database gen_clickstream(std::size_t transactions, std::uint64_t seed) {
  ClickstreamConfig cfg;
  cfg.sessions = transactions;
  cfg.seed = seed;
  return generate_clickstream(cfg);
}

// Short dense rows: the regime the paper recommends for top-down mining
// (bounded subset explosion, very low minimum support).
tdb::Database gen_short_dense(std::size_t transactions, std::uint64_t seed) {
  DenseConfig cfg;
  cfg.transactions = transactions;
  cfg.items = 30;
  cfg.density = 0.25;  // rows of ~7 items over a 30-item alphabet
  cfg.classes = 3;
  cfg.core_fraction = 0.6;
  cfg.seed = seed;
  return generate_dense(cfg);
}

}  // namespace

const std::vector<DatasetSpec>& dataset_registry() {
  static const std::vector<DatasetSpec> registry = {
      {"quest-sparse", "Quest T10/I4, 870 items (T10I4D100K shape)",
       &gen_quest_sparse, 20000, 42},
      {"quest-wide", "Quest T20/I8, 1000 items (T40I10D100K shape, scaled)",
       &gen_quest_wide, 10000, 43},
      {"chess-like", "dense 75-item alphabet, density 0.49 (chess shape)",
       &gen_chess_like, 3196, 7},
      {"mushroom-like", "dense 119-item alphabet, density 0.19 (mushroom)",
       &gen_mushroom_like, 8124, 11},
      {"zipf-sparse", "independent Zipf(1.1) items, 2000-item alphabet",
       &gen_zipf_sparse, 20000, 13},
      {"clickstream", "Markov web sessions over a 500-page link graph",
       &gen_clickstream, 15000, 17},
      {"short-dense", "30-item alphabet, ~7-item rows (top-down regime)",
       &gen_short_dense, 5000, 19},
  };
  return registry;
}

tdb::Database make_dataset(const std::string& name) {
  for (const auto& spec : dataset_registry())
    if (spec.name == name)
      return spec.generate(spec.default_transactions, spec.default_seed);
  throw std::out_of_range("unknown dataset: " + name);
}

tdb::Database make_dataset(const std::string& name, std::size_t transactions,
                           std::uint64_t seed) {
  for (const auto& spec : dataset_registry())
    if (spec.name == name) return spec.generate(transactions, seed);
  throw std::out_of_range("unknown dataset: " + name);
}

}  // namespace plt::datagen
