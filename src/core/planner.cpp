// Plan-mode selection mirrors kernels/dispatch.cpp: one atomic holding
// the process-wide mode, the PLT_PLAN environment variable resolved at
// first use, and named selection that refuses unknown names. The cost
// model itself lives in Planner — pure functions of (config, stats,
// shape), so a plan is reproducible from the trace counters it leaves.
#include "core/planner.hpp"

#include <atomic>
#include <cstdlib>

namespace plt::core {

namespace {

constexpr int kUnset = -1;

std::atomic<int> g_mode{kUnset};

int resolve_default() {
  if (const char* env = std::getenv("PLT_PLAN")) {
    const std::string name(env);
    if (name == "adaptive") return static_cast<int>(PlanMode::kAdaptive);
    // Unknown or "fixed" in the environment: fixed, never fail a process
    // that did not ask for planning.
  }
  return static_cast<int>(PlanMode::kFixed);
}

int load_mode() {
  int mode = g_mode.load(std::memory_order_acquire);
  if (mode == kUnset) {
    const int resolved = resolve_default();
    if (g_mode.compare_exchange_strong(mode, resolved,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
      mode = resolved;  // first resolver published; losers use what they read
  }
  return mode;
}

}  // namespace

const char* plan_name(PlanMode mode) {
  switch (mode) {
    case PlanMode::kFixed: return "fixed";
    case PlanMode::kAdaptive: return "adaptive";
  }
  return "?";
}

bool select_plan(const std::string& name) {
  if (name.empty()) return true;  // keep the current selection
  PlanMode mode;
  if (name == "fixed") {
    mode = PlanMode::kFixed;
  } else if (name == "adaptive") {
    mode = PlanMode::kAdaptive;
  } else {
    return false;
  }
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
  return true;
}

PlanMode active_plan() { return static_cast<PlanMode>(load_mode()); }

Planner::Planner(const PlanConfig& config)
    : config_(config),
      narrow_(&kernels::scalar_dispatch()),
      wide_(&kernels::active()) {}

Planner::Root Planner::choose_root(
    const tdb::Stats& stats, std::span<const tdb::PartitionStats> partitions,
    Count min_support, std::uint32_t topdown_guard_len) const {
  if (stats.transactions == 0) return Root::kConditional;
  const double frac = static_cast<double>(min_support) /
                      static_cast<double>(stats.transactions);
  // Top-down expansion materializes the 2^len subset table per
  // transaction: a win exactly when transactions are short, the database
  // is dense (few subsets die) and the threshold is low (projection has
  // many surviving subtrees to walk). All three gates come straight from
  // the BENCH_topdown_crossover cells.
  if (config_.allow_root_topdown &&
      stats.max_len <= std::min<std::size_t>(config_.root_topdown_max_len,
                                             topdown_guard_len) &&
      frac <= config_.root_topdown_max_minsup_frac &&
      stats.density >= config_.root_topdown_min_density)
    return Root::kTopDown;
  // Vertical mining keeps one tidset per item; on sparse views those stay
  // short and intersections (a SIMD kernel) beat repeated projection. The
  // mass-weighted partition density is the sharper sparsity signal: the
  // global figure dilutes dense pockets that projection handles well.
  if (config_.allow_root_eclat) {
    double mass = 0.0;
    double weighted = 0.0;
    for (const tdb::PartitionStats& p : partitions) {
      const auto t = static_cast<double>(p.transactions);
      mass += t;
      weighted += t * p.density;
    }
    const double partition_density = mass > 0.0 ? weighted / mass : 0.0;
    if (stats.density <= config_.root_eclat_max_density &&
        partition_density <= config_.root_eclat_max_density)
      return Root::kEclat;
    // Gate two — shallow lattice: short ranked transactions at a high
    // threshold leave few surviving candidates, and the vertical walk
    // skips all projection setup for them.
    if (stats.max_len <= config_.root_eclat_max_len &&
        frac >= config_.root_eclat_min_minsup_frac)
      return Root::kEclat;
  }
  return Root::kConditional;
}

Planner::Subtree Planner::choose_subtree(
    const SubtreeShape& shape, const tdb::PartitionStats* partition) const {
  // A single-path conditional database needs no structure at all: every
  // subset of the path shares the database's total frequency, so direct
  // expansion replaces the entire subtree's projections.
  if (config_.allow_subtree_single_path && shape.single_path)
    return Subtree::kSinglePath;
  if (config_.allow_subtree_eclat &&
      shape.records <= config_.eclat_max_records &&
      shape.child_ranks <= config_.eclat_max_ranks) {
    // Depth-0 veto from the partition stats: dense partitions intersect
    // near-full tidsets into near-full tidsets, so the flat projection
    // arena is the cheaper representation there.
    if (partition != nullptr &&
        partition->density > config_.eclat_max_partition_density)
      return Subtree::kPooled;
    return Subtree::kEclat;
  }
  return Subtree::kPooled;
}

void Planner::set_partition_stats(std::vector<tdb::PartitionStats> stats) {
  partition_stats_ = std::move(stats);
  // full_suffix_[j-1] says CD_j is provably one shared path: every
  // partition at or above j holds only full paths (density exactly 1.0 —
  // the division is exact there — or no transactions at all). A full path
  // reinserts as a full path one rank down, so by induction every record
  // reaching CD_j is {1..j-1}. Partial partitions anywhere above poison
  // the whole suffix, hence the suffix-and scan.
  full_suffix_.assign(partition_stats_.size(), 0);
  bool all_full = true;
  for (std::size_t j = partition_stats_.size(); j >= 1; --j) {
    const tdb::PartitionStats& p = partition_stats_[j - 1];
    all_full = all_full && (p.transactions == 0 || p.density >= 1.0);
    full_suffix_[j - 1] = all_full ? 1 : 0;
  }
}

bool Planner::wants_single_path_probe(Rank top_rank,
                                      bool* resolved_single_path) const {
  *resolved_single_path = false;
  if (!config_.allow_subtree_single_path) return false;
  if (top_rank == 0 || top_rank > full_suffix_.size()) return true;
  if (full_suffix_[top_rank - 1] != 0) {
    *resolved_single_path = true;
    return false;
  }
  return true;
}

}  // namespace plt::core
