// The top-down approach (§5, Algorithm 2): propagate frequencies from each
// level-k vector to all of its level-(k-1) subset vectors until every subset
// of every transaction carries its exact support (Figure 4).
//
// Two variants, provably equivalent (tests cross-check them):
//  * kSweep    — paper-faithful staging: all proper prefixes are inserted at
//                construction time ("part A", §5), the sweep then generates
//                only the adjacent-merge forms, shifting the merge point left.
//  * kCanonical— prefixes are generated lazily as tail-drops.
//
// Duplicate-freedom: every derived vector carries `limit`, the largest
// current position at which a deletion may still occur. Deleting the element
// at position p (a tail-drop when p equals the current length, otherwise the
// merge of (p, p+1)) yields a child with limit p-1, so each subset of each
// transaction is produced by exactly one deletion sequence (elements deleted
// in strictly decreasing original index).
//
// Cost note: the expansion materializes every distinct subset of every
// transaction — exponential in transaction length. This is inherent to the
// paper's method (it positions top-down for short/dense data at very low
// minimum support); the guard options below fail fast otherwise.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/exec_control.hpp"
#include "core/itemset_collector.hpp"
#include "core/plt.hpp"
#include "core/rank.hpp"

namespace plt::core {

enum class TopDownVariant { kCanonical, kSweep };

struct TopDownOptions {
  /// Hard cap on transaction length (2^len subsets); throws TopDownOverflow.
  std::uint32_t max_transaction_len = 24;
  /// Hard cap on distinct vectors materialized; throws TopDownOverflow.
  std::size_t max_total_vectors = 64u << 20;
  /// Cooperative control checked during expansion and emission; a tripped
  /// control stops the walk early (the emitted itemsets are a prefix).
  const MiningControl* control = nullptr;
};

/// Thrown when the expansion would exceed the configured guards.
struct TopDownOverflow : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Runs the full propagation and returns the subset-frequency table: a Plt
/// in which every vector's freq equals the exact support of its itemset.
/// This is the paper's Figure 4 state.
Plt topdown_expand(const RankedView& view, TopDownVariant variant,
                   const TopDownOptions& options = {});

struct TopDownStats {
  std::size_t expanded_vectors = 0;  ///< distinct subset vectors materialized
  std::size_t table_bytes = 0;       ///< footprint of the expanded table
};

/// Full top-down mining: expand, then emit every itemset with
/// support >= min_support through the sink (in original item ids).
void mine_topdown(const RankedView& view, Count min_support,
                  const ItemsetSink& sink,
                  TopDownVariant variant = TopDownVariant::kCanonical,
                  const TopDownOptions& options = {},
                  TopDownStats* stats = nullptr);

}  // namespace plt::core
