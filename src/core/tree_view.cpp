#include "core/tree_view.hpp"

#include <algorithm>
#include <sstream>

namespace plt::core {

TreeView::NodeId TreeView::ensure_child(NodeId parent, Pos position) {
  auto& children = nodes_[parent].children;
  const auto it = std::lower_bound(
      children.begin(), children.end(), position,
      [&](NodeId id, Pos p) { return nodes_[id].position < p; });
  if (it != children.end() && nodes_[*it].position == position) return *it;

  Node node;
  node.position = position;
  node.rank = nodes_[parent].rank + position;
  node.parent = parent;
  nodes_.push_back(node);
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  // nodes_ may have reallocated; re-take the children reference.
  auto& fresh = nodes_[parent].children;
  const auto pos_it = std::lower_bound(
      fresh.begin(), fresh.end(), position,
      [&](NodeId nid, Pos p) { return nodes_[nid].position < p; });
  fresh.insert(pos_it, id);
  return id;
}

TreeView TreeView::from_plt(const Plt& plt) {
  TreeView tree;
  plt.for_each([&](Plt::Ref, std::span<const Pos> v,
                   const Partition::Entry& e) {
    NodeId node = kRoot;
    for (const Pos p : v) node = tree.ensure_child(node, p);
    tree.nodes_[node].freq += e.freq;
  });
  return tree;
}

TreeView TreeView::full_lexicographic(Rank max_rank) {
  PLT_ASSERT(max_rank >= 1 && max_rank <= 16,
             "full lexicographic tree guarded to max_rank <= 16");
  TreeView tree;
  // Node for every non-empty subset: children of a node at rank r are the
  // ranks r+1..max_rank, i.e. positions 1..max_rank-r.
  struct Frame {
    NodeId id;
    Rank rank;
  };
  std::vector<Frame> stack{{kRoot, 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    for (Rank next = frame.rank + 1; next <= max_rank; ++next) {
      const NodeId child =
          tree.ensure_child(frame.id, next - frame.rank);
      stack.push_back({child, next});
    }
  }
  return tree;
}

Plt TreeView::to_plt(Rank max_rank) const {
  Plt plt(max_rank);
  walk([&](NodeId id, std::size_t) {
    if (nodes_[id].freq == 0) return;
    plt.add(path(id), nodes_[id].freq);
  });
  return plt;
}

TreeView::NodeId TreeView::child(NodeId id, Pos position) const {
  const auto& children = nodes_[id].children;
  const auto it = std::lower_bound(
      children.begin(), children.end(), position,
      [&](NodeId nid, Pos p) { return nodes_[nid].position < p; });
  if (it != children.end() && nodes_[*it].position == position) return *it;
  return kRoot;
}

TreeView::NodeId TreeView::find(std::span<const Pos> v) const {
  NodeId node = kRoot;
  for (const Pos p : v) {
    node = child(node, p);
    if (node == kRoot) return kRoot;
  }
  return node;
}

PosVec TreeView::path(NodeId id) const {
  PosVec v;
  for (NodeId cur = id; cur != kRoot; cur = nodes_[cur].parent)
    v.push_back(nodes_[cur].position);
  std::reverse(v.begin(), v.end());
  return v;
}

std::string TreeView::to_string() const {
  std::ostringstream out;
  out << "(root)\n";
  walk([&](NodeId id, std::size_t depth) {
    const Node& n = nodes_[id];
    out << std::string(depth * 2, ' ') << n.position << " (rank " << n.rank
        << ')';
    if (n.freq > 0) out << " freq=" << n.freq;
    out << '\n';
  });
  return out.str();
}

std::size_t TreeView::memory_usage() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_)
    bytes += n.children.capacity() * sizeof(NodeId);
  return bytes;
}

}  // namespace plt::core
