// Partition D_k: all distinct position vectors of one length k with their
// frequencies and sums (the "matrix structure" of Figure 3(a)). Vectors live
// in one flat Pos arena; an open-addressing hash index maps vector contents
// to entry ids. Compact and allocation-light (Core Guidelines Per.14/16/19).
#pragma once

#include <span>
#include <vector>

#include "core/position_vector.hpp"
#include "util/common.hpp"

namespace plt::core {

class Partition {
 public:
  /// Entry id within a partition.
  using EntryId = std::uint32_t;
  static constexpr EntryId kNoEntry = 0xffffffffu;

  struct Entry {
    std::uint32_t offset;  ///< start of the vector in the arena
    Rank sum;              ///< Σ positions (the paper's stored V.sum)
    Count freq;            ///< occurrence count
  };

  /// A partition holds vectors of exactly `length` positions (length >= 1).
  explicit Partition(std::uint32_t length);

  std::uint32_t length() const { return length_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Adds `freq` to the vector's count, creating the entry if new.
  /// Returns the entry id; sets `created` when the entry is new.
  EntryId add(std::span<const Pos> v, Count freq, bool& created);
  EntryId add(std::span<const Pos> v, Count freq) {
    bool created = false;
    return add(v, freq, created);
  }

  /// Entry id of the vector, or kNoEntry.
  EntryId find(std::span<const Pos> v) const;

  /// Empties the partition while keeping the arena, entry and hash-index
  /// capacity for reuse (the projection pool's recycling primitive).
  /// Returns the number of heap bytes retained.
  std::size_t reset();

  /// Pre-sizes for `entries` total entries (`entries * length` arena words),
  /// growing the hash index past its load factor up front so a bulk merge
  /// rehashes at most once.
  void reserve(std::size_t entries);

  const Entry& entry(EntryId id) const { return entries_[id]; }
  Entry& entry(EntryId id) { return entries_[id]; }

  /// The positions of an entry.
  std::span<const Pos> positions(EntryId id) const {
    return {arena_.data() + entries_[id].offset, length_};
  }

  /// Total frequency mass in the partition (Σ freq).
  Count total_freq() const;

  /// Number of Pos words stored in the arena (== size() * length() for a
  /// sound layout; the validator cross-checks exactly that).
  std::size_t arena_size() const { return arena_.size(); }

  std::size_t memory_usage() const;

  /// Stable iteration in insertion order.
  template <typename Fn>  // Fn(EntryId, span<const Pos>, const Entry&)
  void for_each(Fn&& fn) const {
    for (EntryId id = 0; id < entries_.size(); ++id)
      fn(id, positions(id), entries_[id]);
  }

  /// Hash of a position vector (exposed for the serialization index).
  static std::uint64_t hash(std::span<const Pos> v);

 private:
  void grow_index();
  bool keys_equal(EntryId id, std::span<const Pos> v) const;

  std::uint32_t length_;
  std::vector<Pos> arena_;
  std::vector<Entry> entries_;
  /// Open-addressing table of entry-id+1 (0 = empty slot); power-of-two size.
  std::vector<std::uint32_t> index_;
};

}  // namespace plt::core
