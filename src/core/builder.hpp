// Algorithm 1 (PLT Construction): second database scan — each transaction's
// frequent items become a position vector inserted (or counted) in the
// partition of its length. Optionally all proper prefixes are inserted too,
// which is "part A" of the top-down approach folded into construction, as
// §5 recommends for efficiency.
#pragma once

#include "core/plt.hpp"
#include "core/rank.hpp"

namespace plt::core {

struct BuildOptions {
  /// Insert every proper prefix of each transaction vector with the same
  /// frequency (paper §5, top-down part A). Off for conditional mining.
  bool insert_prefixes = false;
};

/// Builds the PLT over an already-ranked database (items = ranks 1..n).
Plt build_plt(const tdb::Database& ranked_db, Rank max_rank,
              const BuildOptions& options = {});

/// Convenience: full Algorithm 1 — rank, filter, and build in one call.
struct BuiltPlt {
  RankedView view;
  Plt plt;
};
BuiltPlt build_from_database(const tdb::Database& db, Count min_support,
                             tdb::ItemOrder order = tdb::ItemOrder::kById,
                             const BuildOptions& options = {});

}  // namespace plt::core
