#include "core/validate.hpp"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "core/position_vector.hpp"
#include "core/tree_view.hpp"

namespace plt::core {

namespace {

std::atomic<int> g_validation_enabled{-1};  // -1 = consult PLT_VALIDATE once

void issue(ValidationReport& report, std::string where, std::string message) {
  report.issues.push_back({std::move(where), std::move(message)});
}

std::string entry_where(std::uint32_t length, Partition::EntryId id) {
  return "D" + std::to_string(length) + " entry " + std::to_string(id);
}

/// Partition-level checks shared by both validate() overloads. Appends to
/// `report` instead of returning so the Plt validator accumulates across
/// partitions. Returns false when the arena layout itself is broken — the
/// caller must then skip any check that would read vector contents.
bool validate_partition_into(const Partition& p, Rank max_rank,
                             ValidationReport& report) {
  const std::uint32_t k = p.length();
  const std::string dk = "D" + std::to_string(k);
  if (k == 0) {
    issue(report, dk, "partition length is 0 (Definition 4.1.3 needs k >= 1)");
    return false;
  }
  // Arena layout: entries are appended contiguously, so entry id's vector
  // occupies [id*k, id*k + k). A corrupted offset would make positions()
  // read out of bounds, so this check gates all content checks below.
  bool layout_ok = true;
  if (p.arena_size() != p.size() * k) {
    issue(report, dk,
          "arena holds " + std::to_string(p.arena_size()) +
              " positions but " + std::to_string(p.size()) +
              " entries of length " + std::to_string(k) + " need " +
              std::to_string(p.size() * k));
    layout_ok = false;
  }
  for (Partition::EntryId id = 0; id < p.size(); ++id) {
    const Partition::Entry& e = p.entry(id);
    if (e.offset != static_cast<std::uint64_t>(id) * k) {
      issue(report, entry_where(k, id),
            "arena offset " + std::to_string(e.offset) +
                " does not match the append layout (expected " +
                std::to_string(static_cast<std::uint64_t>(id) * k) + ")");
      layout_ok = false;
    }
  }
  if (!layout_ok) return false;

  for (Partition::EntryId id = 0; id < p.size(); ++id) {
    ++report.vectors_checked;
    const Partition::Entry& e = p.entry(id);
    const std::span<const Pos> v = p.positions(id);
    Rank sum = 0;
    bool positions_ok = true;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == 0) {
        issue(report, entry_where(k, id),
              "position " + std::to_string(i) +
                  " is 0 (Definition 4.1.2 needs every position >= 1)");
        positions_ok = false;
      }
      sum += v[i];
    }
    if (!positions_ok) continue;
    if (e.sum != sum)
      issue(report, entry_where(k, id),
            "stored sum " + std::to_string(e.sum) +
                " != position prefix-sum " + std::to_string(sum) +
                " (Lemma 4.1.1)");
    if (sum < k)
      issue(report, entry_where(k, id),
            "sum " + std::to_string(sum) + " < length " + std::to_string(k) +
                " (Lemma 4.1.2 lower bound)");
    if (max_rank != 0 && sum > max_rank)
      issue(report, entry_where(k, id),
            "sum " + std::to_string(sum) + " exceeds max_rank " +
                std::to_string(max_rank) + " (Lemma 4.1.2 upper bound)");
    // The hash index must resolve the vector back to this exact entry: a
    // miss means index corruption, a different id means a duplicate vector
    // — either way the injectivity of Property 4.1.1 is broken in practice.
    const Partition::EntryId found = p.find(v);
    if (found != id)
      issue(report, entry_where(k, id),
            found == Partition::kNoEntry
                ? std::string("hash index does not resolve the stored vector")
                : "hash index resolves the vector to entry " +
                      std::to_string(found) + " (duplicate vector)");
  }
  return true;
}

void validate_tree_into(const Plt& plt, const ValidateOptions& options,
                        ValidationReport& report) {
  const TreeView tree = TreeView::from_plt(plt);
  // Iterative DFS from the root; the root itself (rank 0, freq 0) carries
  // no invariant of its own.
  std::vector<TreeView::NodeId> stack{TreeView::kRoot};
  while (!stack.empty()) {
    const TreeView::NodeId id = stack.back();
    stack.pop_back();
    const TreeView::Node& node = tree.node(id);
    if (id != TreeView::kRoot) ++report.nodes_checked;
    Pos last_position = 0;
    for (const TreeView::NodeId child_id : node.children) {
      const TreeView::Node& child = tree.node(child_id);
      const std::string where =
          "tree node " + core::to_string(tree.path(child_id));
      if (child.parent != id)
        issue(report, where, "parent link does not point at its parent");
      // Lexicographic child ordering (§4.2): children sorted by position,
      // strictly — equal positions would be the same child twice.
      if (child.position <= last_position && last_position != 0)
        issue(report, where,
              "children out of lexicographic order (position " +
                  std::to_string(child.position) + " after " +
                  std::to_string(last_position) + ")");
      if (child.position == 0)
        issue(report, where, "edge position is 0 (Definition 4.1.2)");
      last_position = child.position;
      // Rank/pos consistency (Lemma 4.1.1): rank is the prefix-sum of edge
      // positions, bounded by the alphabet.
      if (child.rank != node.rank + child.position)
        issue(report, where,
              "rank " + std::to_string(child.rank) +
                  " != parent rank + position (" +
                  std::to_string(node.rank + child.position) +
                  ") (Lemma 4.1.1)");
      if (child.rank > plt.max_rank())
        issue(report, where,
              "rank " + std::to_string(child.rank) + " exceeds max_rank " +
                  std::to_string(plt.max_rank()));
      // Support monotonicity along paths: in a prefix-closed table every
      // transaction counted in an extension was counted in the prefix too.
      if (options.expect_prefix_closed && id != TreeView::kRoot &&
          node.freq < child.freq)
        issue(report, where,
              "support " + std::to_string(child.freq) +
                  " exceeds its prefix's support " +
                  std::to_string(node.freq) +
                  " (monotonicity along paths)");
      stack.push_back(child_id);
    }
    if (options.expect_prefix_closed && id != TreeView::kRoot &&
        !node.children.empty() && node.freq == 0)
      issue(report, "tree node " + core::to_string(tree.path(id)),
            "internal node with frequency 0 in a prefix-closed table");
  }
}

}  // namespace

std::string ValidationReport::to_string() const {
  std::ostringstream out;
  for (const ValidationIssue& i : issues)
    out << i.where << ": " << i.message << '\n';
  return out.str();
}

ValidationReport validate(const Partition& partition, Rank max_rank) {
  ValidationReport report;
  validate_partition_into(partition, max_rank, report);
  return report;
}

ValidationReport validate(const Plt& plt, const ValidateOptions& options) {
  ValidationReport report;
  bool contents_ok = true;
  for (std::uint32_t k = 1; const Partition* p = plt.partition(k); ++k) {
    if (p->length() != k) {
      issue(report, "D" + std::to_string(k),
            "partition at slot " + std::to_string(k) + " has length " +
                std::to_string(p->length()) + " (Definition 4.1.3)");
      contents_ok = false;
      continue;
    }
    if (!validate_partition_into(*p, plt.max_rank(), report))
      contents_ok = false;
  }
  // The sum index (Figure 3(a)): every stored vector appears in exactly the
  // bucket of its sum, exactly once. Broken layouts above make entry sums
  // unreliable, so the cross-check only runs on a sound arena.
  if (contents_ok) {
    std::vector<std::vector<char>> seen;
    for (std::uint32_t k = 1; const Partition* p = plt.partition(k); ++k)
      seen.emplace_back(p->size(), 0);
    std::size_t bucketed = 0;
    for (Rank s = 1; s <= plt.max_rank(); ++s) {
      for (const Plt::Ref ref : plt.bucket(s)) {
        const std::string where = "bucket " + std::to_string(s);
        const Partition* p = plt.partition(ref.length);
        if (p == nullptr || ref.id >= p->size()) {
          issue(report, where,
                "dangling ref (length " + std::to_string(ref.length) +
                    ", id " + std::to_string(ref.id) + ")");
          continue;
        }
        ++bucketed;
        if (p->entry(ref.id).sum != s)
          issue(report, where,
                entry_where(ref.length, ref.id) + " has sum " +
                    std::to_string(p->entry(ref.id).sum) +
                    " but is indexed under " + std::to_string(s));
        char& mark = seen[ref.length - 1][ref.id];
        if (mark != 0)
          issue(report, where,
                entry_where(ref.length, ref.id) +
                    " is indexed more than once");
        mark = 1;
      }
    }
    if (bucketed != plt.num_vectors())
      issue(report, "sum index",
            std::to_string(plt.num_vectors() - bucketed) +
                " stored vector(s) missing from the sum index");
    validate_tree_into(plt, options, report);
  }
  return report;
}

void validate_or_throw(const Plt& plt, const char* context,
                       const ValidateOptions& options) {
  const ValidationReport report = validate(plt, options);
  if (report.ok()) return;
  throw ValidationError(std::string(context) + ": PLT validation failed (" +
                        std::to_string(report.issues.size()) +
                        " issue(s))\n" + report.to_string());
}

bool validation_enabled() {
  int v = g_validation_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("PLT_VALIDATE");
    const std::string_view s = env != nullptr ? env : "";
    v = (!s.empty() && s != "0" && s != "off" && s != "OFF") ? 1 : 0;
    g_validation_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_validation_enabled(bool enabled) {
  g_validation_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace plt::core
