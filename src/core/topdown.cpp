#include "core/topdown.hpp"

#include <unordered_map>

#include "core/builder.hpp"
#include "obs/trace.hpp"

namespace plt::core {

namespace {

// Key for the active generation set: the position vector plus its limit.
struct ActiveKey {
  PosVec v;
  std::uint32_t limit;
  bool operator==(const ActiveKey& o) const {
    return limit == o.limit && v == o.v;
  }
};

struct ActiveKeyHash {
  std::size_t operator()(const ActiveKey& k) const {
    return static_cast<std::size_t>(Partition::hash(k.v) * 31 + k.limit);
  }
};

using ActiveSet = std::unordered_map<ActiveKey, Count, ActiveKeyHash>;

void check_guards(const RankedView& view, const TopDownOptions& options) {
  for (std::size_t t = 0; t < view.db.size(); ++t) {
    if (view.db[t].size() > options.max_transaction_len)
      throw TopDownOverflow(
          "top-down expansion refused: transaction of length " +
          std::to_string(view.db[t].size()) + " exceeds the guard (" +
          std::to_string(options.max_transaction_len) +
          "); use the conditional approach for long transactions");
  }
}

}  // namespace

Plt topdown_expand(const RankedView& view, TopDownVariant variant,
                   const TopDownOptions& options) {
  PLT_SPAN("expand");
  check_guards(view, options);
  const auto max_rank =
      static_cast<Rank>(view.alphabet() == 0 ? 1 : view.alphabet());

  BuildOptions build_options;
  build_options.insert_prefixes = (variant == TopDownVariant::kSweep);
  Plt base = build_plt(view.db, max_rank, build_options);
  const std::uint32_t kmax = base.max_len();

  // Result table: accumulates exact supports for every subset vector.
  Plt result(max_rank);
  // active[k-1]: vectors of length k still able to generate children.
  std::vector<ActiveSet> active(kmax);

  base.for_each([&](Plt::Ref ref, std::span<const Pos> v,
                    const Partition::Entry& e) {
    // Everything present in the base is a deletion-sequence prefix with
    // full freedom below its own length.
    active[ref.length - 1][ActiveKey{PosVec(v.begin(), v.end()),
                                     ref.length}] += e.freq;
    result.add(v, e.freq);
  });

  std::uint64_t control_tick = 0;
  for (std::uint32_t k = kmax; k >= 2; --k) {
    ActiveSet level = std::move(active[k - 1]);
    for (const auto& [key, freq] : level) {
      // memory_usage() walks the partition headers, so re-measure every 64
      // generated parents rather than on each one.
      if (options.control != nullptr &&
          options.control->should_stop(
              (control_tick++ & 63u) == 0 ? result.memory_usage() : 0))
        return result;  // partial table; the caller reads control->status()
      // In the sweep variant tail-drops are pre-inserted prefixes, so only
      // merges are generated; in the canonical variant position p == k is
      // the tail-drop.
      const std::uint32_t top =
          (variant == TopDownVariant::kSweep)
              ? std::min(key.limit, k - 1)
              : key.limit;
      for (std::uint32_t p = 1; p <= top; ++p) {
        PosVec child = (p == k) ? drop_last(key.v) : merge_at(key.v, p - 1);
        result.add(child, freq);
        if (result.num_vectors() > options.max_total_vectors)
          throw TopDownOverflow(
              "top-down expansion refused: vector budget exceeded (" +
              std::to_string(options.max_total_vectors) + ")");
        if (p >= 2)  // children with limit 0 generate nothing further
          active[k - 2][ActiveKey{std::move(child), p - 1}] += freq;
      }
    }
  }
  return result;
}

void mine_topdown(const RankedView& view, Count min_support,
                  const ItemsetSink& sink, TopDownVariant variant,
                  const TopDownOptions& options, TopDownStats* stats) {
  if (view.db.empty() || view.alphabet() == 0) return;
  const Plt table = topdown_expand(view, variant, options);
  PLT_TRACE_COUNT("expanded-vectors", table.num_vectors());
  if (stats) {
    stats->expanded_vectors = table.num_vectors();
    stats->table_bytes = table.memory_usage();
  }
  PLT_SPAN("emit");
  bool stopped = false;
  std::uint64_t tick = 0;
  table.for_each([&](Plt::Ref, std::span<const Pos> v,
                     const Partition::Entry& e) {
    if (stopped || e.freq < min_support) return;
    if (options.control != nullptr && (++tick & 1023u) == 0 &&
        options.control->should_stop(0))
      stopped = true;
    const auto ranks = to_ranks(v);
    const Itemset items = ranks_to_items(view, ranks);
    sink(items, e.freq);
  });
}

}  // namespace plt::core
