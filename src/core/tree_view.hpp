// Physical tree form of the PLT — the paper's Figure 3(b) ("a physical tree
// may also be assumed", §4.2) and the full lexicographic tree of Figure 1.
//
// The table form (Plt) is the mining workhorse; the tree form materializes
// the same information as a linked prefix tree whose edges are labelled with
// *position values* (rank gaps), for navigation, visualization and teaching.
// Conversion is lossless in both directions (tests enforce the round trip).
#pragma once

#include <string>
#include <vector>

#include "core/plt.hpp"

namespace plt::core {

class TreeView {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kRoot = 0;

  struct Node {
    Pos position = 0;      ///< edge label from the parent (rank gap)
    Rank rank = 0;         ///< absolute rank = parent rank + position
    Count freq = 0;        ///< frequency of the path itemset (0 = internal)
    NodeId parent = kRoot;
    std::vector<NodeId> children;  ///< ordered by position ascending
  };

  /// Materializes the tree of every vector stored in `plt`.
  static TreeView from_plt(const Plt& plt);

  /// The full lexicographic tree over an alphabet of `max_rank` items
  /// (Figure 1 / Figure 2), with all path frequencies zero. Exponential in
  /// max_rank — guarded to max_rank <= 16.
  static TreeView full_lexicographic(Rank max_rank);

  /// Converts back to the table form (paths with freq > 0 become vectors).
  Plt to_plt(Rank max_rank) const;

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }

  /// Child of `id` along edge `position`, or kRoot if absent.
  NodeId child(NodeId id, Pos position) const;

  /// Follows a position vector from the root; returns kRoot if the path is
  /// not present in the tree.
  NodeId find(std::span<const Pos> v) const;

  /// The position vector of the path from the root to `id`.
  PosVec path(NodeId id) const;

  /// Depth-first traversal; fn(NodeId, depth).
  template <typename Fn>
  void walk(Fn&& fn) const {
    walk_rec(kRoot, 0, fn);
  }

  /// ASCII rendering in the style of Figure 3(b): one node per line,
  /// "pos(rank):freq", indented by depth.
  std::string to_string() const;

  std::size_t memory_usage() const;

 private:
  NodeId ensure_child(NodeId parent, Pos position);

  template <typename Fn>
  void walk_rec(NodeId id, std::size_t depth, Fn&& fn) const {
    if (id != kRoot) fn(id, depth);
    for (const NodeId c : nodes_[id].children) walk_rec(c, depth + 1, fn);
  }

  std::vector<Node> nodes_{1};  // node 0 is the root
};

}  // namespace plt::core
