// The allocation-free conditional projection engine. The paper's central
// performance claim (§6) is that conditional mining is cheap because each
// projection is a small flat matrix — but a naive Algorithm 3 spends its
// time allocating those matrices: a fresh Plt (partition arenas, hash
// indexes, sum buckets) plus one heap PosVec per conditional-db entry at
// every recursion node. This engine removes all of that from the steady
// state:
//
//   * FlatCondDb — the conditional database is one contiguous Pos arena
//     plus (offset, len, freq) records; prefixes are peeled exactly once.
//   * a depth-indexed pool of recycled Plt frames — mining is DFS, so at
//     most one projection per depth is live; frame d is reset() (capacity
//     retained) and reused by every node at depth d.
//   * an explicit stack replaces the C++ call stack, so projection state
//     lives in the pool and deep conditional chains cannot overflow.
//
// After warm-up the only allocations are capacity growth on workloads
// bigger than anything seen before — the ProjectionStats counters make
// that visible (and bench_projection_pool records it).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/conditional.hpp"
#include "core/exec_control.hpp"
#include "core/planner.hpp"
#include "core/plt.hpp"

namespace plt::core {

/// Cheap engine counters, surfaced through MineResult and BENCH JSON.
struct ProjectionStats {
  std::uint64_t projections_built = 0;  ///< conditional PLTs constructed
  std::uint64_t entries_projected = 0;  ///< prefixes peeled into flat cond DBs
  /// Frame acquisitions served by recycling an existing pool frame vs by
  /// constructing a new one. The seed recursive path performs one fresh
  /// allocation per projection, so `projections_built - fresh_allocations`
  /// projections stopped paying for construction.
  std::uint64_t recycled_allocations = 0;
  std::uint64_t fresh_allocations = 0;
  std::uint64_t bytes_recycled = 0;  ///< capacity retained across frame reuse
  std::uint64_t bytes_fresh = 0;     ///< capacity newly grown inside frames
  std::uint64_t steals = 0;  ///< work-stealing miner: chunks taken from peers
  // Planner decisions (all zero under --plan=fixed). Subtree counts sum to
  // the number of non-empty conditional databases the planner saw; the
  // narrow/wide pair counts per-call kernel-backend routing.
  std::uint64_t plan_pooled = 0;       ///< subtrees kept on the pooled walk
  std::uint64_t plan_single_path = 0;  ///< subtrees expanded as one path
  std::uint64_t plan_eclat = 0;        ///< subtrees mined by intersection
  std::uint64_t plan_narrow = 0;       ///< calls routed to the scalar table
  std::uint64_t plan_wide = 0;         ///< calls kept on the active table

  void merge(const ProjectionStats& other);
};

/// Flat conditional database: one contiguous Pos arena plus per-entry
/// (offset, len, freq) records — replaces vector<pair<PosVec, Count>> so a
/// whole conditional db costs zero allocations once capacity is warm.
class FlatCondDb {
 public:
  struct Record {
    std::uint32_t offset;
    std::uint32_t len;
    Count freq;
  };

  void clear() {
    arena_.clear();
    records_.clear();
  }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Appends one prefix; the returned span (into the arena) stays valid
  /// until the next push.
  std::span<const Pos> push(std::span<const Pos> prefix, Count freq) {
    const auto offset = static_cast<std::uint32_t>(arena_.size());
    arena_.insert(arena_.end(), prefix.begin(), prefix.end());
    records_.push_back(
        {offset, static_cast<std::uint32_t>(prefix.size()), freq});
    return {arena_.data() + offset, prefix.size()};
  }

  std::span<const Pos> positions(const Record& r) const {
    return {arena_.data() + r.offset, r.len};
  }
  const std::vector<Record>& records() const { return records_; }
  /// The raw gap arena, all records back to back — the projection engine
  /// peels the whole thing with one kernel call and re-bases per record.
  const std::vector<Pos>& arena() const { return arena_; }

 private:
  std::vector<Pos> arena_;
  std::vector<Record> records_;
};

/// The pooled, iterative Algorithm 3. One engine per thread; reuse it across
/// many mine() calls (the parallel partition miner holds one per worker) so
/// every projection after the first few recycles warm arenas.
class ProjectionEngine {
 public:
  /// Mines `plt` (consumed, same contract as mine_plt_conditional): every
  /// frequent extension of `suffix` is reported through `sink` in original
  /// item ids, exactly like the recursive reference path.
  void mine(Plt& plt, const std::vector<Item>& item_of,
            std::vector<Item>& suffix, Count min_support,
            const ItemsetSink& sink, const ConditionalOptions& options);

  const ProjectionStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Attaches a cooperative control checked once per processed rank (null
  /// detaches). `base_bytes` is added to the engine's own footprint when
  /// reporting memory use against the control's budget (pass the mined
  /// structure's size so the budget sees the whole working set).
  void set_control(const MiningControl* control, std::size_t base_bytes = 0) {
    control_ = control;
    control_base_bytes_ = base_bytes;
  }

  /// True when the last mine() was stopped early by the attached control.
  bool interrupted() const { return interrupted_; }

  /// Attaches the adaptive planner (null = fixed mode, the default): every
  /// non-empty conditional database is then routed to the strategy the
  /// cost model picks — pooled projection (unchanged walk), single-path
  /// expansion, or tidset intersection — and each data-parallel kernel
  /// call is routed to the scalar or SIMD table by input width. All three
  /// strategies emit the exact same itemsets in the exact same order
  /// (DESIGN.md S25), so only time changes. The planner must outlive the
  /// mine; one const planner may be shared across worker engines.
  void set_planner(const Planner* planner) { planner_ = planner; }

  /// Public entry for a subtree proven single-path by an external witness
  /// (the OOC walk's rank-level planner): emits every subset of
  /// items[0..upto) at constant support `freq`, byte-identical — content
  /// and order — to mine() over the equivalent one-path conditional PLT.
  /// Honors the attached control (check interrupted() afterwards).
  void expand_single_path(std::span<const Item> items, Rank upto, Count freq,
                          std::vector<Item>& suffix, const ItemsetSink& sink) {
    interrupted_ = false;
    expand_path(items, upto, freq, suffix, sink);
  }

  /// Heap bytes currently held by the pooled frames and scratch buffers.
  std::size_t memory_usage() const;

 private:
  /// One recycled projection frame: the conditional PLT for a depth plus
  /// its local-rank -> original-item translation.
  struct Frame {
    Plt plt{1};
    std::vector<Item> item_of;
  };

  Frame& acquire(std::size_t depth);
  /// One cooperative control check; memory is re-measured every few ticks
  /// (measuring walks the pool, so it is amortized off the hot path).
  bool check_control();
  /// Peels cond_'s arena with the given kernel table, counts per-parent-
  /// rank support, and compacts the survivors: fills sums_, support_,
  /// to_child_ and `child_items`. Returns the number of surviving ranks.
  Rank peel_and_count(const kernels::Dispatch& kernel, Rank parent_max,
                      Count keep_threshold,
                      const std::vector<Item>& parent_items,
                      std::vector<Item>& child_items);
  /// Builds frame.plt from the peeled + compacted cond_ (sums_/to_child_
  /// as left by peel_and_count; child_ranks must be > 0).
  void build_frame(Frame& frame, Rank child_ranks);
  /// Projects cond_ (vectors over parent ranks 1..parent_max) into `frame`,
  /// filtering and compacting ranks exactly like make_conditional_plt.
  /// Returns false when no rank survives (nothing to mine below).
  bool project_into(Frame& frame, Rank parent_max, Count min_support,
                    bool filter_items, const std::vector<Item>& parent_items);
  /// Adaptive analog of project_into: peels, asks the planner, and either
  /// mines the subtree in place (single-path / Eclat; returns null) or
  /// builds a pooled frame for the caller to push (returns it). Sets
  /// interrupted_ when a control stop fires inside an in-place strategy.
  Frame* planned_project(Rank j, std::size_t depth, Count min_support,
                         const ConditionalOptions& options,
                         const std::vector<Item>& parent_items,
                         std::vector<Item>& suffix, const ItemsetSink& sink);
  /// True when every record keeps all `child_ranks` ranks (one shared
  /// path); reads sums_/to_child_ as left by peel_and_count.
  bool probe_single_path(Rank child_ranks) const;
  /// Emits every subset of items[0..upto) at constant support `freq`, in
  /// the exact order the pooled walk would (rank high to low, DFS).
  void expand_path(std::span<const Item> items, Rank upto, Count freq,
                   std::vector<Item>& suffix, const ItemsetSink& sink);
  /// Mines the peeled cond_ by sorted-tidset intersection (records as
  /// tids, freq-weighted support), emission-order identical to pooling.
  void eclat_mine(Rank child_ranks, Count min_support,
                  std::vector<Item>& suffix, const ItemsetSink& sink);
  void eclat_descend(std::span<const std::uint32_t> tids, Rank below,
                     Count min_support, std::vector<Item>& suffix,
                     const ItemsetSink& sink, std::size_t depth);

  std::vector<std::unique_ptr<Frame>> pool_;  ///< pool_[d] = depth d+1 frame
  FlatCondDb cond_;
  std::vector<Count> support_;  ///< scratch: local support per parent rank
  std::vector<Rank> to_child_;  ///< scratch: parent rank -> child rank
  std::vector<Rank> sums_;      ///< scratch: peeled prefix sums of the arena
  PosVec mapped_;               ///< scratch: one re-mapped child vector
  Itemset emitted_;             ///< scratch: sorted itemset handed to sinks
  // Planned-strategy scratch (only touched when a planner is attached).
  std::vector<Item> planned_items_;  ///< child rank -> original item
  std::vector<std::uint32_t> tid_offsets_;  ///< rank -> tid_arena_ slice
  std::vector<std::uint32_t> tid_cursor_;   ///< fill cursors for the arena
  std::vector<std::uint32_t> tid_arena_;    ///< record ids, per-rank sorted
  std::vector<Count> rec_freq_;             ///< record id -> frequency
  std::vector<std::vector<std::uint32_t>> eclat_pool_;  ///< per-depth tids
  ProjectionStats stats_;
  const Planner* planner_ = nullptr;
  const MiningControl* control_ = nullptr;
  std::size_t control_base_bytes_ = 0;
  std::uint64_t control_tick_ = 0;
  std::size_t last_measured_bytes_ = 0;
  bool interrupted_ = false;
};

}  // namespace plt::core
