#include "core/fup.hpp"

#include <algorithm>
#include <unordered_map>

#include "baselines/counting.hpp"

namespace plt::core {

namespace {

struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const Item i : s) {
      h ^= i;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

using SupportMap = std::unordered_map<Itemset, Count, ItemsetHash>;

// Apriori join over the new frequent (k-1)-level (sorted itemsets), pruned
// by the all-subsets-frequent test against the same level.
std::vector<Itemset> join_level(const std::vector<Itemset>& level) {
  std::vector<Itemset> candidates;
  std::unordered_map<Itemset, bool, ItemsetHash> in_level;
  in_level.reserve(level.size() * 2);
  for (const Itemset& z : level) in_level.emplace(z, true);

  Itemset probe;
  for (std::size_t a = 0; a < level.size(); ++a) {
    for (std::size_t b = a + 1; b < level.size(); ++b) {
      if (!std::equal(level[a].begin(), level[a].end() - 1,
                      level[b].begin()))
        break;
      Itemset candidate = level[a];
      candidate.push_back(level[b].back());
      bool keep = true;
      for (std::size_t drop = 0; drop + 2 < candidate.size() && keep;
           ++drop) {
        probe.clear();
        for (std::size_t j = 0; j < candidate.size(); ++j)
          if (j != drop) probe.push_back(candidate[j]);
        keep = in_level.count(probe) > 0;
      }
      if (keep) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

}  // namespace

FupResult fup_update(const tdb::Database& old_db,
                     const FrequentItemsets& old_frequent,
                     Count old_min_support, const tdb::Database& delta,
                     Count new_min_support) {
  PLT_ASSERT(new_min_support >= old_min_support,
             "FUP requires a non-decreasing threshold");
  FupResult result;

  // Old result as a lookup: itemset -> old count.
  SupportMap old_support;
  old_support.reserve(old_frequent.size() * 2);
  std::size_t old_max_len = 0;
  for (std::size_t i = 0; i < old_frequent.size(); ++i) {
    const auto z = old_frequent.itemset(i);
    old_support.emplace(Itemset(z.begin(), z.end()),
                        old_frequent.support(i));
    old_max_len = std::max(old_max_len, z.size());
  }

  // An absent itemset had old count < old_min_support, so it needs at
  // least this many delta occurrences to reach the new threshold.
  const Count loser_threshold =
      new_min_support - old_min_support + 1;

  // Level 1 candidates: every item of either database.
  std::vector<Itemset> level_candidates;
  {
    std::vector<Count> seen(
        std::max<std::size_t>(old_db.max_item(), delta.max_item()) + 1, 0);
    const auto mark = [&](const tdb::Database& db) {
      for (std::size_t t = 0; t < db.size(); ++t)
        for (const Item item : db[t]) seen[item] = 1;
    };
    mark(old_db);
    mark(delta);
    for (Item i = 0; i < seen.size(); ++i)
      if (seen[i]) level_candidates.push_back({i});
  }

  std::vector<Itemset> new_level;  // frequent itemsets of this level
  for (std::size_t k = 1; !level_candidates.empty(); ++k) {
    // Count every candidate on the delta (one pass).
    const auto delta_counts =
        baselines::count_supports(delta, level_candidates);

    // Split into winners (old count known) and losers needing a rescan.
    std::vector<Itemset> rescan;
    std::vector<std::size_t> rescan_index;
    std::vector<Count> totals(level_candidates.size(), 0);
    std::vector<bool> viable(level_candidates.size(), false);
    for (std::size_t c = 0; c < level_candidates.size(); ++c) {
      const auto it = old_support.find(level_candidates[c]);
      if (it != old_support.end()) {
        ++result.winner_candidates;
        totals[c] = it->second + delta_counts[c];
        viable[c] = true;
      } else {
        ++result.loser_candidates;
        if (delta_counts[c] >= loser_threshold) {
          rescan.push_back(level_candidates[c]);
          rescan_index.push_back(c);
        }
      }
    }
    if (!rescan.empty()) {
      const auto old_counts = baselines::count_supports(old_db, rescan);
      ++result.old_db_passes;
      result.rescanned += rescan.size();
      for (std::size_t r = 0; r < rescan.size(); ++r) {
        const std::size_t c = rescan_index[r];
        totals[c] = old_counts[r] + delta_counts[c];
        viable[c] = true;
      }
    }

    new_level.clear();
    for (std::size_t c = 0; c < level_candidates.size(); ++c) {
      if (!viable[c] || totals[c] < new_min_support) continue;
      result.itemsets.add(level_candidates[c], totals[c]);
      new_level.push_back(level_candidates[c]);
    }
    std::sort(new_level.begin(), new_level.end());
    level_candidates = join_level(new_level);
  }
  return result;
}

}  // namespace plt::core
