// Positional subset checking — the paper's headline "light subset checking"
// (§1, §6). By Lemma 4.1.1 the prefix sums of a position vector are the
// ranks of its items, so X ⊆ Y reduces to sorted-set inclusion of prefix
// sums, computed in one streaming pass with no decode buffer.
#pragma once

#include "core/plt.hpp"
#include "core/rank.hpp"

namespace plt::core {

/// True iff the itemset encoded by `x` is a subset of the one encoded by
/// `y` (both position vectors over the same rank space).
bool positional_subset(std::span<const Pos> x, std::span<const Pos> y);

/// True iff the sorted rank sequence `ranks` is a subset of the itemset
/// encoded by position vector `y`.
bool ranks_subset_of(std::span<const Rank> ranks, std::span<const Pos> y);

/// Exact support of an itemset (given as sorted ranks) by scanning the PLT:
/// Σ freq over stored vectors that contain it. Requires a PLT built without
/// prefix insertion (each transaction stored exactly once).
Count support_of(const Plt& plt, std::span<const Rank> ranks);

/// Same query answered against the raw ranked database, as the baseline the
/// subset-check microbench compares against.
Count support_of_scan(const tdb::Database& ranked_db,
                      std::span<const Rank> ranks);

}  // namespace plt::core
