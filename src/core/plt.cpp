#include "core/plt.hpp"

#include <sstream>

namespace plt::core {

Plt::Plt(Rank max_rank) : max_rank_(max_rank) {
  buckets_.resize(max_rank_);
}

std::uint32_t Plt::max_len() const {
  for (std::size_t k = partitions_.size(); k >= 1; --k)
    if (!partitions_[k - 1].empty()) return static_cast<std::uint32_t>(k);
  return 0;
}

Plt::Ref Plt::add(std::span<const Pos> v, Count freq) {
  PLT_ASSERT(!v.empty(), "cannot store the empty vector");
  const Rank sum = vector_sum(v);
  PLT_ASSERT(sum >= 1 && sum <= max_rank_,
             "vector sum exceeds the alphabet's maximum rank");
  const auto k = static_cast<std::uint32_t>(v.size());
  while (partitions_.size() < k)
    partitions_.emplace_back(
        static_cast<std::uint32_t>(partitions_.size() + 1));
  bool created = false;
  const auto id = partitions_[k - 1].add(v, freq, created);
  const Ref ref{k, id};
  if (created) buckets_[sum - 1].push_back(ref);
  return ref;
}

Count Plt::freq_of(std::span<const Pos> v) const {
  const auto k = v.size();
  if (k == 0 || k > partitions_.size()) return 0;
  const auto id = partitions_[k - 1].find(v);
  return id == Partition::kNoEntry ? 0 : partitions_[k - 1].entry(id).freq;
}

std::size_t Plt::reset(Rank max_rank) {
  PLT_ASSERT(max_rank >= 1, "a PLT needs at least one rank");
  max_rank_ = max_rank;
  std::size_t retained = 0;
  for (auto& p : partitions_) retained += p.reset();
  // Buckets beyond the new alphabet are kept (empty) so their capacity
  // survives a later reset to a wider alphabet.
  if (buckets_.size() < max_rank_) buckets_.resize(max_rank_);
  for (auto& b : buckets_) {
    b.clear();
    retained += b.capacity() * sizeof(Ref);
  }
  return retained;
}

void Plt::reserve_for_merge(const Plt& source) {
  for (std::uint32_t k = 1; k <= source.partitions_.size(); ++k) {
    const Partition& src = source.partitions_[k - 1];
    if (src.empty()) continue;
    while (partitions_.size() < k)
      partitions_.emplace_back(
          static_cast<std::uint32_t>(partitions_.size() + 1));
    partitions_[k - 1].reserve(partitions_[k - 1].size() + src.size());
  }
  for (Rank s = 1; s <= source.max_rank_ && s <= max_rank_; ++s)
    buckets_[s - 1].reserve(buckets_[s - 1].size() +
                            source.buckets_[s - 1].size());
}

const Partition* Plt::partition(std::uint32_t length) const {
  if (length == 0 || length > partitions_.size()) return nullptr;
  return &partitions_[length - 1];
}

Partition* Plt::partition(std::uint32_t length) {
  if (length == 0 || length > partitions_.size()) return nullptr;
  return &partitions_[length - 1];
}

std::span<const Plt::Ref> Plt::bucket(Rank sum) const {
  PLT_ASSERT(sum >= 1 && sum <= max_rank_, "bucket sum out of range");
  return buckets_[sum - 1];
}

std::size_t Plt::num_vectors() const {
  std::size_t n = 0;
  for (const auto& p : partitions_) n += p.size();
  return n;
}

Count Plt::total_freq() const {
  Count total = 0;
  for (const auto& p : partitions_) total += p.total_freq();
  return total;
}

std::size_t Plt::memory_usage() const {
  std::size_t bytes = sizeof(Plt);
  for (const auto& p : partitions_) bytes += p.memory_usage();
  for (const auto& b : buckets_) bytes += b.capacity() * sizeof(Ref);
  return bytes;
}

std::string Plt::to_string() const {
  std::ostringstream out;
  for (std::uint32_t k = 1; k <= partitions_.size(); ++k) {
    const auto& p = partitions_[k - 1];
    if (p.empty()) continue;
    out << "D" << k << ":\n";
    p.for_each([&](Partition::EntryId, std::span<const Pos> v,
                   const Partition::Entry& e) {
      out << "  " << core::to_string(v) << " sum=" << e.sum
          << " freq=" << e.freq << '\n';
    });
  }
  return out.str();
}

}  // namespace plt::core
