#include "core/projection_pool.hpp"

#include <algorithm>

#include "kernels/kernels.hpp"
#include "obs/trace.hpp"

namespace plt::core {

void ProjectionStats::merge(const ProjectionStats& other) {
  projections_built += other.projections_built;
  entries_projected += other.entries_projected;
  recycled_allocations += other.recycled_allocations;
  fresh_allocations += other.fresh_allocations;
  bytes_recycled += other.bytes_recycled;
  bytes_fresh += other.bytes_fresh;
  steals += other.steals;
  plan_pooled += other.plan_pooled;
  plan_single_path += other.plan_single_path;
  plan_eclat += other.plan_eclat;
  plan_narrow += other.plan_narrow;
  plan_wide += other.plan_wide;
}

bool ProjectionEngine::check_control() {
  // Ranks process in ~hundreds of nanoseconds, so even one relaxed atomic
  // load per rank shows up against the 2% overhead target. Amortize the
  // whole check (cancel flag, deadline clock read, budget) across 16
  // ranks: the stop latency stays in the microseconds.
  if ((control_tick_++ & 15u) != 0) return false;
  // Budget checks need a byte figure; memory_usage() walks the pool, so
  // refresh it sparsely and reuse the last measurement between.
  if (control_->memory_budget() != 0 && (control_tick_ & 255u) == 1)
    last_measured_bytes_ = memory_usage();
  return control_->should_stop(control_base_bytes_ + last_measured_bytes_);
}

ProjectionEngine::Frame& ProjectionEngine::acquire(std::size_t depth) {
  if (depth >= pool_.size()) {
    pool_.push_back(std::make_unique<Frame>());
    ++stats_.fresh_allocations;
  } else {
    ++stats_.recycled_allocations;
  }
  return *pool_[depth];
}

Rank ProjectionEngine::peel_and_count(const kernels::Dispatch& kernel,
                                      Rank parent_max, Count keep_threshold,
                                      const std::vector<Item>& parent_items,
                                      std::vector<Item>& child_items) {
  // Peel the whole conditional arena to absolute ranks in one kernel call:
  // sums_[k] is the running mod-2^32 total of every gap up to k, and each
  // record re-bases by subtracting the sum just before its offset — exact
  // under wrap-around, and the wide prefix-sum is where the SIMD backends
  // earn their keep (see kernels.hpp peel_prefixes).
  const std::vector<Pos>& arena = cond_.arena();
  sums_.resize(arena.size());
  kernel.peel_prefixes(arena.data(), sums_.data(), arena.size());
  obs::count_kernel("kernel.peel_prefixes.calls",
                    "kernel.peel_prefixes.bytes",
                    arena.size() * sizeof(Pos));

  // Local support of every parent rank appearing in the conditional db.
  support_.assign(parent_max, 0);
  for (const FlatCondDb::Record& r : cond_.records()) {
    const Rank base = r.offset == 0 ? 0 : sums_[r.offset - 1];
    const std::uint32_t end = r.offset + r.len;
    for (std::uint32_t i = r.offset; i < end; ++i)
      support_[sums_[i] - base - 1] += r.freq;
  }

  to_child_.assign(parent_max, 0);
  child_items.clear();
  Rank child_ranks = 0;
  for (Rank r = 1; r <= parent_max; ++r) {
    if (support_[r - 1] >= keep_threshold && support_[r - 1] > 0) {
      to_child_[r - 1] = ++child_ranks;
      child_items.push_back(parent_items[r - 1]);
    }
  }
  return child_ranks;
}

void ProjectionEngine::build_frame(Frame& frame, Rank child_ranks) {
  const std::size_t retained = frame.plt.reset(child_ranks);
  stats_.bytes_recycled += retained;
  for (const FlatCondDb::Record& rec : cond_.records()) {
    mapped_.clear();
    const Rank base = rec.offset == 0 ? 0 : sums_[rec.offset - 1];
    const std::uint32_t end = rec.offset + rec.len;
    Rank prev_child = 0;
    for (std::uint32_t i = rec.offset; i < end; ++i) {
      const Rank c = to_child_[sums_[i] - base - 1];
      if (c == 0) continue;  // filtered item
      mapped_.push_back(c - prev_child);
      prev_child = c;
    }
    if (!mapped_.empty()) frame.plt.add(mapped_, rec.freq);
  }
  ++stats_.projections_built;
  const std::size_t now = frame.plt.memory_usage();
  if (now > retained) stats_.bytes_fresh += now - retained;
}

bool ProjectionEngine::project_into(Frame& frame, Rank parent_max,
                                    Count min_support, bool filter_items,
                                    const std::vector<Item>& parent_items) {
  PLT_SPAN("projection");
  const Count keep_threshold = filter_items ? min_support : 1;
  const Rank child_ranks = peel_and_count(kernels::active(), parent_max,
                                          keep_threshold, parent_items,
                                          frame.item_of);
  if (child_ranks == 0) return false;
  build_frame(frame, child_ranks);
  return true;
}

bool ProjectionEngine::probe_single_path(Rank child_ranks) const {
  // One shared path iff every record keeps all surviving ranks: kept
  // positions are strictly increasing child ranks, so keeping child_ranks
  // of them means the record maps to exactly {1..child_ranks}.
  for (const FlatCondDb::Record& rec : cond_.records()) {
    const Rank base = rec.offset == 0 ? 0 : sums_[rec.offset - 1];
    const std::uint32_t end = rec.offset + rec.len;
    std::uint32_t kept = 0;
    for (std::uint32_t i = rec.offset; i < end; ++i)
      kept += to_child_[sums_[i] - base - 1] != 0 ? 1u : 0u;
    if (kept != child_ranks) return false;
  }
  return true;
}

void ProjectionEngine::expand_path(std::span<const Item> items, Rank upto,
                                   Count freq, std::vector<Item>& suffix,
                                   const ItemsetSink& sink) {
  // Every subset of a single-path conditional database has the same
  // support (the path's total frequency), so enumeration needs no
  // structure. The order matches the pooled walk exactly: rank high to
  // low, each rank emitted before its own conditional subtree.
  for (Rank jj = upto; jj >= 1; --jj) {
    if (control_ != nullptr && check_control()) {
      interrupted_ = true;
      return;
    }
    suffix.push_back(items[jj - 1]);
    emitted_ = suffix;
    std::sort(emitted_.begin(), emitted_.end());
    sink(emitted_, freq);
    PLT_TRACE_COUNT("itemsets-emitted", 1);
    if (jj > 1) expand_path(items, jj - 1, freq, suffix, sink);
    suffix.pop_back();
    if (interrupted_) return;
  }
}

void ProjectionEngine::eclat_mine(Rank child_ranks, Count min_support,
                                  std::vector<Item>& suffix,
                                  const ItemsetSink& sink) {
  // Vertical view of the peeled cond_: per child rank, the sorted list of
  // record ids containing it (a counting sort over the arena), weighted
  // by record frequency. Small shallow shapes intersect faster than they
  // re-project — the planner only routes those here.
  const std::vector<FlatCondDb::Record>& records = cond_.records();
  tid_offsets_.assign(child_ranks + 1, 0);
  for (const FlatCondDb::Record& rec : records) {
    const Rank base = rec.offset == 0 ? 0 : sums_[rec.offset - 1];
    const std::uint32_t end = rec.offset + rec.len;
    for (std::uint32_t i = rec.offset; i < end; ++i) {
      const Rank c = to_child_[sums_[i] - base - 1];
      if (c != 0) ++tid_offsets_[c];
    }
  }
  for (Rank c = 1; c <= child_ranks; ++c) tid_offsets_[c] += tid_offsets_[c - 1];
  tid_cursor_.assign(tid_offsets_.begin(), tid_offsets_.end());
  tid_arena_.resize(tid_offsets_[child_ranks]);
  rec_freq_.resize(records.size());
  for (std::uint32_t t = 0; t < records.size(); ++t) {
    const FlatCondDb::Record& rec = records[t];
    rec_freq_[t] = rec.freq;
    const Rank base = rec.offset == 0 ? 0 : sums_[rec.offset - 1];
    const std::uint32_t end = rec.offset + rec.len;
    for (std::uint32_t i = rec.offset; i < end; ++i) {
      const Rank c = to_child_[sums_[i] - base - 1];
      if (c != 0) tid_arena_[tid_cursor_[c - 1]++] = t;
    }
  }
  eclat_descend({}, child_ranks, min_support, suffix, sink, 0);
}

void ProjectionEngine::eclat_descend(std::span<const std::uint32_t> tids,
                                     Rank below, Count min_support,
                                     std::vector<Item>& suffix,
                                     const ItemsetSink& sink,
                                     std::size_t depth) {
  // DFS over child ranks high to low — the same visit order as the pooled
  // walk, and the bucket mass it computes there equals the freq-weighted
  // tidset cardinality here, so emissions match item for item.
  for (Rank i = below; i >= 1; --i) {
    if (control_ != nullptr && check_control()) {
      interrupted_ = true;
      return;
    }
    const std::span<const std::uint32_t> base{
        tid_arena_.data() + tid_offsets_[i - 1],
        static_cast<std::size_t>(tid_offsets_[i] - tid_offsets_[i - 1])};
    std::span<const std::uint32_t> set;
    if (tids.data() == nullptr) {
      set = base;  // root level: the rank's own tidlist
    } else {
      if (depth >= eclat_pool_.size()) eclat_pool_.resize(depth + 1);
      std::vector<std::uint32_t>& out = eclat_pool_[depth];
      out.resize(std::min(tids.size(), base.size()) + 4);
      const bool wide = planner_->wide_for(tids.size() + base.size());
      if (wide) {
        PLT_TRACE_COUNT("plan.backend.wide", 1);
        ++stats_.plan_wide;
      } else {
        PLT_TRACE_COUNT("plan.backend.narrow", 1);
        ++stats_.plan_narrow;
      }
      const std::size_t n = planner_->dispatch(wide).intersect_sorted(
          tids.data(), tids.size(), base.data(), base.size(), out.data());
      obs::count_kernel("kernel.intersect_sorted.calls",
                        "kernel.intersect_sorted.bytes",
                        (tids.size() + base.size()) * sizeof(std::uint32_t));
      set = {out.data(), n};
    }
    Count support = 0;
    for (const std::uint32_t t : set) support += rec_freq_[t];
    if (support < min_support) continue;
    suffix.push_back(planned_items_[i - 1]);
    emitted_ = suffix;
    std::sort(emitted_.begin(), emitted_.end());
    sink(emitted_, support);
    PLT_TRACE_COUNT("itemsets-emitted", 1);
    if (i > 1)
      eclat_descend(set, i - 1, min_support, suffix, sink, depth + 1);
    suffix.pop_back();
    if (interrupted_) return;
  }
}

ProjectionEngine::Frame* ProjectionEngine::planned_project(
    Rank j, std::size_t depth, Count min_support,
    const ConditionalOptions& options, const std::vector<Item>& parent_items,
    std::vector<Item>& suffix, const ItemsetSink& sink) {
  PLT_SPAN("projection");
  const Count keep_threshold =
      options.filter_conditional_items ? min_support : 1;
  // Backend choice for the peel: tiny arenas take the scalar table, wide
  // ones the process-active SIMD table. Counters are named by intent
  // (narrow/wide), not by backend, so adaptive traces stay
  // backend-invariant like every other exported quantity.
  const bool wide = planner_->wide_for(cond_.arena().size());
  if (wide) {
    PLT_TRACE_COUNT("plan.backend.wide", 1);
    ++stats_.plan_wide;
  } else {
    PLT_TRACE_COUNT("plan.backend.narrow", 1);
    ++stats_.plan_narrow;
  }
  const Rank child_ranks =
      peel_and_count(planner_->dispatch(wide), j, keep_threshold,
                     parent_items, planned_items_);
  if (child_ranks == 0) return nullptr;

  SubtreeShape shape;
  shape.records = cond_.size();
  shape.positions = cond_.arena().size();
  shape.child_ranks = child_ranks;
  // Depth-0 subtree j of the facade's walk is CD_j, whose partition stats
  // the planner holds: they can answer the single-path question in O(1)
  // (all-full suffix) and veto Eclat on dense partitions.
  const Rank top_rank = depth == 0 ? j : 0;
  const tdb::PartitionStats* partition =
      depth == 0 ? planner_->partition(j) : nullptr;
  bool resolved = false;
  if (shape.records == 1) {
    shape.single_path = true;  // one record is trivially one path
  } else if (planner_->wants_single_path_probe(top_rank, &resolved)) {
    shape.single_path = probe_single_path(child_ranks);
  } else {
    shape.single_path = resolved;
  }

  switch (planner_->choose_subtree(shape, partition)) {
    case Planner::Subtree::kSinglePath: {
      PLT_TRACE_COUNT("plan.subtree.single-path", 1);
      ++stats_.plan_single_path;
      Count total = 0;
      for (const FlatCondDb::Record& rec : cond_.records())
        total += rec.freq;
      // total can only miss min_support in the no-filter ablation (the
      // planner is not attached there), but guard anyway: every subset
      // shares this support, so an infrequent path emits nothing.
      if (total >= min_support)
        expand_path(planned_items_, child_ranks, total, suffix, sink);
      return nullptr;
    }
    case Planner::Subtree::kEclat: {
      PLT_TRACE_COUNT("plan.subtree.eclat", 1);
      ++stats_.plan_eclat;
      eclat_mine(child_ranks, min_support, suffix, sink);
      return nullptr;
    }
    case Planner::Subtree::kPooled:
      break;
  }
  PLT_TRACE_COUNT("plan.subtree.pooled", 1);
  ++stats_.plan_pooled;
  Frame& frame = acquire(depth);
  frame.item_of.assign(planned_items_.begin(), planned_items_.end());
  build_frame(frame, child_ranks);
  return &frame;
}

void ProjectionEngine::mine(Plt& plt, const std::vector<Item>& item_of,
                            std::vector<Item>& suffix, Count min_support,
                            const ItemsetSink& sink,
                            const ConditionalOptions& options) {
  // One level per projection depth. Level 0 borrows the caller's PLT;
  // deeper levels point into the pool. `j` is the rank the level will
  // process next (Algorithm 3 walks ranks high to low).
  struct Level {
    Plt* plt;
    const std::vector<Item>* items;
    Rank j;
  };
  // One span for the whole iterative walk (the explicit stack interleaves
  // depths, so per-node RAII spans cannot nest here); per-rank and
  // per-projection activity lands in counters and the "projection" span.
  PLT_SPAN("rank-loop");
  std::vector<Level> stack;
  stack.push_back({&plt, &item_of, plt.max_rank()});
  interrupted_ = false;

  while (!stack.empty()) {
    if (control_ != nullptr && check_control()) {
      // Unwind cleanly: restore the caller's suffix (one pushed item per
      // live child level) and leave already-emitted itemsets in the sink.
      while (stack.size() > 1) {
        stack.pop_back();
        suffix.pop_back();
      }
      interrupted_ = true;
      return;
    }
    Level& top = stack.back();
    if (top.j == 0) {
      stack.pop_back();
      // A child level was spawned after its parent pushed item j onto the
      // suffix; finishing the child finishes that rank of the parent.
      if (!stack.empty()) suffix.pop_back();
      continue;
    }
    const Rank j = top.j--;
    Plt& p = *top.plt;
    if (p.bucket(j).empty()) continue;

    cond_.clear();
    const Count support = for_each_bucket_prefix(
        p, j, [&](std::span<const Pos> prefix, Count freq) {
          // Peel once into the flat buffer; the stored span serves both the
          // working-PLT update ("Update PLT with V'") and the projection.
          const auto stored = cond_.push(prefix, freq);
          p.add(stored, freq);
        });
    stats_.entries_projected += cond_.size();
    PLT_TRACE_COUNT("ranks-processed", 1);
    PLT_TRACE_COUNT("entries-projected", cond_.size());
    if (support < min_support) continue;  // anti-monotone cut

    suffix.push_back((*top.items)[j - 1]);
    emitted_ = suffix;
    std::sort(emitted_.begin(), emitted_.end());
    sink(emitted_, support);
    PLT_TRACE_COUNT("itemsets-emitted", 1);

    if (!cond_.empty()) {
      Frame* child = nullptr;
      if (planner_ == nullptr) {
        Frame& frame = acquire(stack.size() - 1);
        if (project_into(frame, j, min_support,
                         options.filter_conditional_items, *top.items))
          child = &frame;
      } else {
        child = planned_project(j, stack.size() - 1, min_support, options,
                                *top.items, suffix, sink);
        if (interrupted_) {
          // A control stop fired inside an in-place strategy. Unwind like
          // the loop-head check: drop rank j's suffix item, then one per
          // live child level.
          suffix.pop_back();
          while (stack.size() > 1) {
            stack.pop_back();
            suffix.pop_back();
          }
          return;
        }
      }
      if (child != nullptr) {
        stack.push_back(
            {&child->plt, &child->item_of, child->plt.max_rank()});
        continue;  // the suffix item stays pushed while the child mines
      }
    }
    suffix.pop_back();
  }
}

std::size_t ProjectionEngine::memory_usage() const {
  std::size_t bytes = 0;
  for (const auto& frame : pool_)
    bytes += frame->plt.memory_usage() +
             frame->item_of.capacity() * sizeof(Item);
  bytes += support_.capacity() * sizeof(Count) +
           to_child_.capacity() * sizeof(Rank) +
           sums_.capacity() * sizeof(Rank) +
           mapped_.capacity() * sizeof(Pos) +
           emitted_.capacity() * sizeof(Item);
  bytes += planned_items_.capacity() * sizeof(Item) +
           tid_offsets_.capacity() * sizeof(std::uint32_t) +
           tid_cursor_.capacity() * sizeof(std::uint32_t) +
           tid_arena_.capacity() * sizeof(std::uint32_t) +
           rec_freq_.capacity() * sizeof(Count);
  for (const std::vector<std::uint32_t>& tids : eclat_pool_)
    bytes += tids.capacity() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace plt::core
