#include "core/projection_pool.hpp"

#include <algorithm>

#include "kernels/kernels.hpp"
#include "obs/trace.hpp"

namespace plt::core {

void ProjectionStats::merge(const ProjectionStats& other) {
  projections_built += other.projections_built;
  entries_projected += other.entries_projected;
  recycled_allocations += other.recycled_allocations;
  fresh_allocations += other.fresh_allocations;
  bytes_recycled += other.bytes_recycled;
  bytes_fresh += other.bytes_fresh;
  steals += other.steals;
}

bool ProjectionEngine::check_control() {
  // Ranks process in ~hundreds of nanoseconds, so even one relaxed atomic
  // load per rank shows up against the 2% overhead target. Amortize the
  // whole check (cancel flag, deadline clock read, budget) across 16
  // ranks: the stop latency stays in the microseconds.
  if ((control_tick_++ & 15u) != 0) return false;
  // Budget checks need a byte figure; memory_usage() walks the pool, so
  // refresh it sparsely and reuse the last measurement between.
  if (control_->memory_budget() != 0 && (control_tick_ & 255u) == 1)
    last_measured_bytes_ = memory_usage();
  return control_->should_stop(control_base_bytes_ + last_measured_bytes_);
}

ProjectionEngine::Frame& ProjectionEngine::acquire(std::size_t depth) {
  if (depth >= pool_.size()) {
    pool_.push_back(std::make_unique<Frame>());
    ++stats_.fresh_allocations;
  } else {
    ++stats_.recycled_allocations;
  }
  return *pool_[depth];
}

bool ProjectionEngine::project_into(Frame& frame, Rank parent_max,
                                    Count min_support, bool filter_items,
                                    const std::vector<Item>& parent_items) {
  PLT_SPAN("projection");
  // Peel the whole conditional arena to absolute ranks in one kernel call:
  // sums_[k] is the running mod-2^32 total of every gap up to k, and each
  // record re-bases by subtracting the sum just before its offset — exact
  // under wrap-around, and the wide prefix-sum is where the SIMD backends
  // earn their keep (see kernels.hpp peel_prefixes).
  const std::vector<Pos>& arena = cond_.arena();
  sums_.resize(arena.size());
  const kernels::Dispatch& k = kernels::active();
  k.peel_prefixes(arena.data(), sums_.data(), arena.size());
  obs::count_kernel("kernel.peel_prefixes.calls",
                    "kernel.peel_prefixes.bytes",
                    arena.size() * sizeof(Pos));

  // Local support of every parent rank appearing in the conditional db.
  support_.assign(parent_max, 0);
  for (const FlatCondDb::Record& r : cond_.records()) {
    const Rank base = r.offset == 0 ? 0 : sums_[r.offset - 1];
    const std::uint32_t end = r.offset + r.len;
    for (std::uint32_t i = r.offset; i < end; ++i)
      support_[sums_[i] - base - 1] += r.freq;
  }

  const Count keep_threshold = filter_items ? min_support : 1;
  to_child_.assign(parent_max, 0);
  frame.item_of.clear();
  Rank child_ranks = 0;
  for (Rank r = 1; r <= parent_max; ++r) {
    if (support_[r - 1] >= keep_threshold && support_[r - 1] > 0) {
      to_child_[r - 1] = ++child_ranks;
      frame.item_of.push_back(parent_items[r - 1]);
    }
  }
  if (child_ranks == 0) return false;

  const std::size_t retained = frame.plt.reset(child_ranks);
  stats_.bytes_recycled += retained;
  for (const FlatCondDb::Record& rec : cond_.records()) {
    mapped_.clear();
    const Rank base = rec.offset == 0 ? 0 : sums_[rec.offset - 1];
    const std::uint32_t end = rec.offset + rec.len;
    Rank prev_child = 0;
    for (std::uint32_t i = rec.offset; i < end; ++i) {
      const Rank c = to_child_[sums_[i] - base - 1];
      if (c == 0) continue;  // filtered item
      mapped_.push_back(c - prev_child);
      prev_child = c;
    }
    if (!mapped_.empty()) frame.plt.add(mapped_, rec.freq);
  }
  ++stats_.projections_built;
  const std::size_t now = frame.plt.memory_usage();
  if (now > retained) stats_.bytes_fresh += now - retained;
  return true;
}

void ProjectionEngine::mine(Plt& plt, const std::vector<Item>& item_of,
                            std::vector<Item>& suffix, Count min_support,
                            const ItemsetSink& sink,
                            const ConditionalOptions& options) {
  // One level per projection depth. Level 0 borrows the caller's PLT;
  // deeper levels point into the pool. `j` is the rank the level will
  // process next (Algorithm 3 walks ranks high to low).
  struct Level {
    Plt* plt;
    const std::vector<Item>* items;
    Rank j;
  };
  // One span for the whole iterative walk (the explicit stack interleaves
  // depths, so per-node RAII spans cannot nest here); per-rank and
  // per-projection activity lands in counters and the "projection" span.
  PLT_SPAN("rank-loop");
  std::vector<Level> stack;
  stack.push_back({&plt, &item_of, plt.max_rank()});
  interrupted_ = false;

  while (!stack.empty()) {
    if (control_ != nullptr && check_control()) {
      // Unwind cleanly: restore the caller's suffix (one pushed item per
      // live child level) and leave already-emitted itemsets in the sink.
      while (stack.size() > 1) {
        stack.pop_back();
        suffix.pop_back();
      }
      interrupted_ = true;
      return;
    }
    Level& top = stack.back();
    if (top.j == 0) {
      stack.pop_back();
      // A child level was spawned after its parent pushed item j onto the
      // suffix; finishing the child finishes that rank of the parent.
      if (!stack.empty()) suffix.pop_back();
      continue;
    }
    const Rank j = top.j--;
    Plt& p = *top.plt;
    if (p.bucket(j).empty()) continue;

    cond_.clear();
    const Count support = for_each_bucket_prefix(
        p, j, [&](std::span<const Pos> prefix, Count freq) {
          // Peel once into the flat buffer; the stored span serves both the
          // working-PLT update ("Update PLT with V'") and the projection.
          const auto stored = cond_.push(prefix, freq);
          p.add(stored, freq);
        });
    stats_.entries_projected += cond_.size();
    PLT_TRACE_COUNT("ranks-processed", 1);
    PLT_TRACE_COUNT("entries-projected", cond_.size());
    if (support < min_support) continue;  // anti-monotone cut

    suffix.push_back((*top.items)[j - 1]);
    emitted_ = suffix;
    std::sort(emitted_.begin(), emitted_.end());
    sink(emitted_, support);
    PLT_TRACE_COUNT("itemsets-emitted", 1);

    if (!cond_.empty()) {
      Frame& frame = acquire(stack.size() - 1);
      if (project_into(frame, j, min_support,
                       options.filter_conditional_items, *top.items)) {
        stack.push_back(
            {&frame.plt, &frame.item_of, frame.plt.max_rank()});
        continue;  // the suffix item stays pushed while the child mines
      }
    }
    suffix.pop_back();
  }
}

std::size_t ProjectionEngine::memory_usage() const {
  std::size_t bytes = 0;
  for (const auto& frame : pool_)
    bytes += frame->plt.memory_usage() +
             frame->item_of.capacity() * sizeof(Item);
  bytes += support_.capacity() * sizeof(Count) +
           to_child_.capacity() * sizeof(Rank) +
           sums_.capacity() * sizeof(Rank) +
           mapped_.capacity() * sizeof(Pos) +
           emitted_.capacity() * sizeof(Item);
  return bytes;
}

}  // namespace plt::core
