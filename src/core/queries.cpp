#include "core/queries.hpp"

#include <algorithm>
#include <numeric>

namespace plt::core {

namespace {

// Count itemsets of at least min_length in a result.
std::size_t count_at_length(const FrequentItemsets& itemsets,
                            std::size_t min_length) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < itemsets.size(); ++i)
    n += itemsets.itemset(i).size() >= min_length;
  return n;
}

}  // namespace

FrequentItemsets mine_top_k(const tdb::Database& db, std::size_t k,
                            const TopKOptions& options) {
  FrequentItemsets empty;
  if (k == 0 || db.empty()) return empty;

  // Find the largest threshold t such that mining at t yields >= k
  // itemsets (of the required length), by descending geometric search
  // followed by reuse of the final (complete) result.
  Count threshold = db.size();
  FrequentItemsets mined;
  for (;;) {
    mined = mine(db, threshold, options.algorithm).itemsets;
    if (count_at_length(mined, options.min_length) >= k || threshold == 1)
      break;
    threshold = std::max<Count>(1, threshold / 2);
  }

  // Keep the k best by support (ties at the cut included).
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < mined.size(); ++i)
    if (mined.itemset(i).size() >= options.min_length) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mined.support(a) > mined.support(b);
  });
  FrequentItemsets top;
  Count cut_support = 0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t i = order[rank];
    if (rank < k) {
      cut_support = mined.support(i);
      top.add(mined.itemset(i), mined.support(i));
    } else if (mined.support(i) == cut_support) {
      top.add(mined.itemset(i), mined.support(i));  // tie at the cut
    } else {
      break;
    }
  }
  return top;
}

ConstrainedResult mine_containing(const tdb::Database& db, Count min_support,
                                  const Itemset& constraint) {
  ConstrainedResult result;
  PLT_ASSERT(!constraint.empty(), "constraint must be non-empty");
  Itemset sorted_constraint = constraint;
  std::sort(sorted_constraint.begin(), sorted_constraint.end());
  sorted_constraint.erase(
      std::unique(sorted_constraint.begin(), sorted_constraint.end()),
      sorted_constraint.end());

  // Project: transactions containing the whole constraint, minus the
  // constraint items themselves.
  tdb::Database projection;
  Count constraint_support = 0;
  std::vector<Item> row;
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto items = db[t];
    if (!std::includes(items.begin(), items.end(), sorted_constraint.begin(),
                       sorted_constraint.end()))
      continue;
    ++constraint_support;
    row.clear();
    std::set_difference(items.begin(), items.end(),
                        sorted_constraint.begin(), sorted_constraint.end(),
                        std::back_inserter(row));
    if (!row.empty()) projection.add(row);
  }
  if (constraint_support < min_support) return result;

  result.constraint_support = constraint_support;
  result.itemsets.add(sorted_constraint, constraint_support);

  // Frequent extensions within the projection (support over the full
  // database = support within the projection, since every projected
  // transaction contains the constraint).
  const auto mined =
      mine(projection, min_support, Algorithm::kPltConditional);
  Itemset combined;
  for (std::size_t i = 0; i < mined.itemsets.size(); ++i) {
    const auto extension = mined.itemsets.itemset(i);
    combined.clear();
    std::merge(extension.begin(), extension.end(),
               sorted_constraint.begin(), sorted_constraint.end(),
               std::back_inserter(combined));
    result.itemsets.add(combined, mined.itemsets.support(i));
  }
  return result;
}

}  // namespace plt::core
