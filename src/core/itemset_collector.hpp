// Result container shared by every miner in the repo: frequent itemsets in
// *original item ids* with their supports, stored flat. Canonicalization
// (sort itemsets lexicographically) makes results from different miners
// directly comparable in tests and benches.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace plt::core {

class FrequentItemsets {
 public:
  void add(std::span<const Item> items, Count support);
  void add(const Itemset& items, Count support) {
    add(std::span<const Item>(items), support);
  }

  std::size_t size() const { return supports_.size(); }
  bool empty() const { return supports_.empty(); }

  std::span<const Item> itemset(std::size_t i) const {
    return {items_.data() + offsets_[i],
            static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }
  Count support(std::size_t i) const { return supports_[i]; }

  /// Number of itemsets of each length; index = length.
  std::vector<std::size_t> level_counts() const;

  /// Length of the longest itemset.
  std::size_t max_length() const;

  /// Sorts itemsets by (length, lexicographic) — canonical order.
  void canonicalize();

  /// Exact equality after canonicalization of both sides.
  static bool equal(FrequentItemsets a, FrequentItemsets b);

  /// Returns the support of `items` (which must be sorted), or 0 when the
  /// itemset was not mined. Linear scan — intended for tests.
  Count find_support(std::span<const Item> items) const;

  /// "{1,3,5}:4" lines, canonical order.
  std::string to_string() const;

  std::size_t memory_usage() const;

 private:
  std::vector<Item> items_;
  std::vector<std::uint64_t> offsets_ = {0};
  std::vector<Count> supports_;
};

/// Callback signature every miner reports through.
using ItemsetSink = std::function<void(std::span<const Item>, Count)>;

/// Sink that appends into a FrequentItemsets.
ItemsetSink collect_into(FrequentItemsets& out);

}  // namespace plt::core
