// Incremental PLT maintenance. The paper's construction (Algorithm 1) is a
// batch scan; because the PLT is a pure frequency table keyed by position
// vectors, it also supports transaction-level updates: adding a transaction
// is one vector increment, removing one is a decrement. This module keeps a
// PLT over the *unfiltered* alphabet (ranks = raw item ids, so the encoding
// is stable under any update) and mines at query time with any threshold —
// the conditional approach prunes infrequent items by itself, so no
// re-filtering pass is needed.
#pragma once

#include "core/conditional.hpp"
#include "core/itemset_collector.hpp"
#include "core/plt.hpp"
#include "tdb/database.hpp"

namespace plt::core {

class IncrementalPlt {
 public:
  /// `max_item` bounds the item universe (ids 1..max_item).
  explicit IncrementalPlt(Item max_item);

  /// Adds one transaction (any iteration order; deduplicated). Items must
  /// be in [1, max_item].
  void add(std::span<const Item> transaction);
  void add(std::initializer_list<Item> transaction) {
    add(std::span<const Item>(transaction.begin(), transaction.size()));
  }

  /// Removes one previously-added transaction. Throws std::invalid_argument
  /// if that exact transaction has no remaining occurrences.
  void remove(std::span<const Item> transaction);
  void remove(std::initializer_list<Item> transaction) {
    remove(std::span<const Item>(transaction.begin(), transaction.size()));
  }

  /// Bulk-loads a database.
  void add_all(const tdb::Database& db);

  /// Number of live transactions.
  Count size() const { return transactions_; }

  /// Support of a single item.
  Count item_support(Item item) const;

  /// Mines all frequent itemsets at `min_support` from the current state;
  /// equivalent to batch-building from scratch (tests enforce this).
  FrequentItemsets mine(Count min_support,
                        const ConditionalOptions& options = {}) const;

  /// Reconstructs the equivalent database (transaction multiset; order is
  /// not preserved).
  tdb::Database to_database() const;

  std::size_t distinct_vectors() const { return plt_.num_vectors(); }
  std::size_t memory_usage() const;

 private:
  /// Encodes into pos_scratch_ and returns a span over it — add/remove are
  /// allocation-free once the scratch is warm, and the span feeds
  /// Partition::find / Plt::add without a temporary vector copy.
  std::span<const Pos> encode(std::span<const Item> transaction) const;

  Item max_item_;
  Plt plt_;
  std::vector<Count> item_supports_;
  Count transactions_ = 0;
  mutable std::vector<Item> scratch_;
  mutable PosVec pos_scratch_;
};

}  // namespace plt::core
