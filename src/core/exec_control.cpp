#include "core/exec_control.hpp"

#include <atomic>

namespace plt::core {

const char* to_string(MineStatus status) {
  switch (status) {
    case MineStatus::kCompleted: return "completed";
    case MineStatus::kCancelled: return "cancelled";
    case MineStatus::kDeadlineExceeded: return "deadline-exceeded";
    case MineStatus::kBudgetExceeded: return "budget-exceeded";
  }
  return "?";
}

void ResilienceStats::merge(const ResilienceStats& other) {
  control_checks += other.control_checks;
  failpoint_hits += other.failpoint_hits;
  crc_verifications += other.crc_verifications;
  checkpoint_records += other.checkpoint_records;
}

struct MiningControl::State {
  std::atomic<bool> cancel{false};
  /// Deadline as steady_clock nanoseconds-since-epoch; 0 = none.
  std::atomic<std::int64_t> deadline_ns{0};
  std::atomic<std::uint64_t> budget_bytes{0};  ///< 0 = none
  std::atomic<int> latched{0};  ///< MineStatus of the first trip, 0 = none
  std::atomic<std::uint64_t> checks{0};
};

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MiningControl::MiningControl() : state_(std::make_shared<State>()) {}

MiningControl MiningControl::with_deadline(std::chrono::nanoseconds budget) {
  MiningControl control;
  control.set_deadline_after(budget);
  return control;
}

void MiningControl::request_cancel() {
  state_->cancel.store(true, std::memory_order_relaxed);
}

bool MiningControl::cancel_requested() const {
  return state_->cancel.load(std::memory_order_relaxed);
}

void MiningControl::set_deadline_after(std::chrono::nanoseconds budget) {
  state_->deadline_ns.store(steady_now_ns() + budget.count(),
                            std::memory_order_relaxed);
}

void MiningControl::set_memory_budget(std::size_t bytes) {
  state_->budget_bytes.store(bytes, std::memory_order_relaxed);
}

std::size_t MiningControl::memory_budget() const {
  return static_cast<std::size_t>(
      state_->budget_bytes.load(std::memory_order_relaxed));
}

bool MiningControl::limited() const {
  const State& s = *state_;
  return s.cancel.load(std::memory_order_relaxed) ||
         s.deadline_ns.load(std::memory_order_relaxed) != 0 ||
         s.budget_bytes.load(std::memory_order_relaxed) != 0;
}

bool MiningControl::should_stop(std::size_t approx_bytes) const {
  State& s = *state_;
  s.checks.fetch_add(1, std::memory_order_relaxed);
  if (s.latched.load(std::memory_order_relaxed) != 0) return true;

  MineStatus verdict = MineStatus::kCompleted;
  if (s.cancel.load(std::memory_order_relaxed)) {
    verdict = MineStatus::kCancelled;
  } else if (const auto deadline =
                 s.deadline_ns.load(std::memory_order_relaxed);
             deadline != 0 && steady_now_ns() >= deadline) {
    verdict = MineStatus::kDeadlineExceeded;
  } else if (const auto budget =
                 s.budget_bytes.load(std::memory_order_relaxed);
             budget != 0 && approx_bytes > budget) {
    verdict = MineStatus::kBudgetExceeded;
  }
  if (verdict == MineStatus::kCompleted) return false;

  int expected = 0;
  s.latched.compare_exchange_strong(expected, static_cast<int>(verdict),
                                    std::memory_order_relaxed);
  return true;
}

MineStatus MiningControl::status() const {
  return static_cast<MineStatus>(
      state_->latched.load(std::memory_order_relaxed));
}

std::uint64_t MiningControl::checks() const {
  return state_->checks.load(std::memory_order_relaxed);
}

}  // namespace plt::core
