#include "core/rank.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace plt::core {

RankedView build_ranked_view(const tdb::Database& db, Count min_support,
                             tdb::ItemOrder order) {
  PLT_SPAN("build-ranked-view");
  PLT_TRACE_COUNT("transactions", db.size());
  RankedView view;
  view.min_support = min_support;
  view.remap = tdb::build_remap(db, min_support, order);
  view.db = tdb::apply_remap(db, view.remap);
  return view;
}

Itemset ranks_to_items(const RankedView& view, std::span<const Rank> ranks) {
  Itemset items;
  items.reserve(ranks.size());
  for (const Rank r : ranks) items.push_back(view.item_of(r));
  std::sort(items.begin(), items.end());
  return items;
}

}  // namespace plt::core
