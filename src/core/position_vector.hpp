// Position vectors (Definitions 4.1.2/4.1.3): an itemset {x1<...<xk} over
// ranks is encoded as the gap vector [Rank(x1), Rank(x2)-Rank(x1), ...,
// Rank(xk)-Rank(x_{k-1})]. Lemma 4.1.1: Rank(xi) = prefix-sum of positions;
// Lemma 4.1.2: the encoding is injective; Lemma 4.1.3: level-(k-1) subsets
// are the tail-drop and the k-1 adjacent-pair merges.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace plt::core {

/// A position vector. Every element is >= 1.
using PosVec = std::vector<Pos>;

/// Encodes a strictly-increasing rank sequence as positions.
PosVec to_positions(std::span<const Rank> ranks);

/// Decodes positions back to ranks (prefix sums) — Lemma 4.1.1.
std::vector<Rank> to_ranks(std::span<const Pos> positions);

/// Sum of all positions == rank of the last (highest) item. This is the
/// per-vector `sum` the paper stores for the conditional approach.
Rank vector_sum(std::span<const Pos> positions);

/// True iff `v` is a well-formed position vector (all positions >= 1 and the
/// sum does not exceed max_rank).
bool is_valid(std::span<const Pos> positions, Rank max_rank);

/// All level-(k-1) subset vectors of `v` per Lemma 4.1.3: the tail-drop form
/// (a) followed by the k-1 merge forms (b), in merge-position order.
std::vector<PosVec> level_subsets(std::span<const Pos> v);

/// The tail-drop subset (form (a)); empty for k == 1.
PosVec drop_last(std::span<const Pos> v);

/// The merge-at-i subset (form (b)), replacing (p_i, p_{i+1}) by their sum;
/// i is 0-based and must satisfy i + 1 < v.size().
PosVec merge_at(std::span<const Pos> v, std::size_t i);

/// "[1,2,1]" rendering for tests and the paper-artifact bench.
std::string to_string(std::span<const Pos> positions);

}  // namespace plt::core
