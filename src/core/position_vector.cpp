#include "core/position_vector.hpp"

#include <sstream>

#include "kernels/kernels.hpp"

namespace plt::core {

PosVec to_positions(std::span<const Rank> ranks) {
  PosVec v;
  v.reserve(ranks.size());
  Rank prev = 0;
  for (const Rank r : ranks) {
    PLT_ASSERT(r > prev, "ranks must be strictly increasing and >= 1");
    v.push_back(r - prev);
    prev = r;
  }
  return v;
}

std::vector<Rank> to_ranks(std::span<const Pos> positions) {
  std::vector<Rank> ranks;
  ranks.reserve(positions.size());
  Rank acc = 0;
  for (const Pos p : positions) {
    PLT_ASSERT(p >= 1, "positions must be >= 1");
    acc += p;
    ranks.push_back(acc);
  }
  return ranks;
}

Rank vector_sum(std::span<const Pos> positions) {
  return kernels::active().sum_positions(positions.data(), positions.size());
}

bool is_valid(std::span<const Pos> positions, Rank max_rank) {
  Rank acc = 0;
  for (const Pos p : positions) {
    if (p < 1) return false;
    acc += p;
  }
  return positions.empty() || acc <= max_rank;
}

PosVec drop_last(std::span<const Pos> v) {
  PLT_ASSERT(!v.empty(), "drop_last of an empty vector");
  return PosVec(v.begin(), v.end() - 1);
}

PosVec merge_at(std::span<const Pos> v, std::size_t i) {
  PLT_ASSERT(i + 1 < v.size(), "merge_at: index out of range");
  PosVec out;
  out.reserve(v.size() - 1);
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (j == i) {
      out.push_back(v[i] + v[i + 1]);
      ++j;  // skip v[i+1], already folded in
    } else {
      out.push_back(v[j]);
    }
  }
  return out;
}

std::vector<PosVec> level_subsets(std::span<const Pos> v) {
  std::vector<PosVec> subsets;
  if (v.size() <= 1) return subsets;  // only the empty set below a 1-vector
  subsets.reserve(v.size());
  subsets.push_back(drop_last(v));
  for (std::size_t i = 0; i + 1 < v.size(); ++i)
    subsets.push_back(merge_at(v, i));
  return subsets;
}

std::string to_string(std::span<const Pos> positions) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i) out << ',';
    out << positions[i];
  }
  out << ']';
  return out.str();
}

}  // namespace plt::core
