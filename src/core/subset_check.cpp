#include "core/subset_check.hpp"

#include <algorithm>

namespace plt::core {

bool positional_subset(std::span<const Pos> x, std::span<const Pos> y) {
  if (x.size() > y.size()) return false;
  // Stream both prefix-sum sequences; every sum of x must appear in y's.
  Rank xsum = 0, ysum = 0;
  std::size_t yi = 0;
  for (const Pos px : x) {
    xsum += px;
    while (yi < y.size()) {
      ysum += y[yi++];
      if (ysum >= xsum) break;
    }
    if (ysum != xsum) return false;
  }
  return true;
}

bool ranks_subset_of(std::span<const Rank> ranks, std::span<const Pos> y) {
  if (ranks.size() > y.size()) return false;
  Rank ysum = 0;
  std::size_t yi = 0;
  for (const Rank r : ranks) {
    while (yi < y.size()) {
      ysum += y[yi++];
      if (ysum >= r) break;
    }
    if (ysum != r) return false;
  }
  return true;
}

Count Plt_support_scan(const Plt& plt, std::span<const Rank> ranks) {
  Count total = 0;
  const Rank last = ranks.empty() ? 0 : ranks.back();
  plt.for_each([&](Plt::Ref, std::span<const Pos> v,
                   const Partition::Entry& e) {
    // Cheap rejections first: the vector must be long enough and reach at
    // least the itemset's highest rank (sum = highest rank, Lemma 4.1.1).
    if (v.size() < ranks.size() || e.sum < last) return;
    if (ranks_subset_of(ranks, v)) total += e.freq;
  });
  return total;
}

Count support_of(const Plt& plt, std::span<const Rank> ranks) {
  if (ranks.empty()) return plt.total_freq();
  return Plt_support_scan(plt, ranks);
}

Count support_of_scan(const tdb::Database& ranked_db,
                      std::span<const Rank> ranks) {
  Count total = 0;
  for (std::size_t t = 0; t < ranked_db.size(); ++t) {
    const auto row = ranked_db[t];
    if (row.size() < ranks.size()) continue;
    if (std::includes(row.begin(), row.end(), ranks.begin(), ranks.end()))
      total += 1;
  }
  return total;
}

}  // namespace plt::core
