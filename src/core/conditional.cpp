#include "core/conditional.hpp"

#include <algorithm>

#include "core/builder.hpp"
#include "core/projection_pool.hpp"

namespace plt::core {

ConditionalProjection make_conditional_plt(
    const std::vector<std::pair<PosVec, Count>>& cond, Rank parent_max_rank,
    Count min_support, bool filter_items) {
  ConditionalProjection child;

  // Local support of every parent rank appearing in the conditional db.
  std::vector<Count> support(parent_max_rank, 0);
  for (const auto& [v, freq] : cond) {
    Rank acc = 0;
    for (const Pos p : v) {
      acc += p;
      support[acc - 1] += freq;
    }
  }

  const Count keep_threshold = filter_items ? min_support : 1;
  std::vector<Rank> to_child(parent_max_rank, 0);  // parent rank -> child
  for (Rank r = 1; r <= parent_max_rank; ++r) {
    if (support[r - 1] >= keep_threshold && support[r - 1] > 0) {
      child.to_parent.push_back(r);
      to_child[r - 1] = static_cast<Rank>(child.to_parent.size());
    }
  }
  if (child.to_parent.empty()) return child;

  child.plt = Plt(static_cast<Rank>(child.to_parent.size()));
  PosVec mapped;
  for (const auto& [v, freq] : cond) {
    mapped.clear();
    Rank acc = 0;
    Rank prev_child = 0;
    for (const Pos p : v) {
      acc += p;
      const Rank c = to_child[acc - 1];
      if (c == 0) continue;  // filtered item
      mapped.push_back(c - prev_child);
      prev_child = c;
    }
    if (!mapped.empty()) child.plt.add(mapped, freq);
  }
  return child;
}

std::vector<std::pair<PosVec, Count>> conditional_database(const Plt& plt,
                                                           Rank j) {
  std::vector<std::pair<PosVec, Count>> cond;
  for_each_bucket_prefix(plt, j, [&](std::span<const Pos> prefix, Count freq) {
    cond.emplace_back(PosVec(prefix.begin(), prefix.end()), freq);
  });
  return cond;
}

void mine_plt_conditional(Plt& plt, const std::vector<Item>& item_of,
                          std::vector<Item>& suffix, Count min_support,
                          const ItemsetSink& sink,
                          const ConditionalOptions& options) {
  ProjectionEngine engine;
  engine.mine(plt, item_of, suffix, min_support, sink, options);
}

void mine_plt_conditional_recursive(Plt& plt,
                                    const std::vector<Item>& item_of,
                                    std::vector<Item>& suffix,
                                    Count min_support, const ItemsetSink& sink,
                                    const ConditionalOptions& options) {
  std::vector<std::pair<PosVec, Count>> cond;
  Itemset emitted;
  for (Rank j = plt.max_rank(); j >= 1; --j) {
    if (plt.bucket(j).empty()) continue;
    cond.clear();
    const Count support = for_each_bucket_prefix(
        plt, j, [&](std::span<const Pos> prefix, Count freq) {
          cond.emplace_back(PosVec(prefix.begin(), prefix.end()), freq);
          // Algorithm 3's "Update PLT with V'": lower ranks must see this
          // transaction with item j peeled off.
          plt.add(cond.back().first, freq);
        });
    if (support < min_support) continue;  // anti-monotone cut

    suffix.push_back(item_of[j - 1]);
    emitted = suffix;
    std::sort(emitted.begin(), emitted.end());
    sink(emitted, support);

    if (!cond.empty()) {
      ConditionalProjection child = make_conditional_plt(
          cond, j, min_support, options.filter_conditional_items);
      if (!child.empty()) {
        // Compose the translation: child local rank -> original item.
        std::vector<Item> child_item_of(child.to_parent.size());
        for (std::size_t c = 0; c < child.to_parent.size(); ++c)
          child_item_of[c] = item_of[child.to_parent[c] - 1];
        mine_plt_conditional_recursive(child.plt, child_item_of, suffix,
                                       min_support, sink, options);
      }
    }
    suffix.pop_back();
  }
}

void mine_conditional(const RankedView& view, Count min_support,
                      const ItemsetSink& sink,
                      const ConditionalOptions& options) {
  if (view.db.empty() || view.alphabet() == 0) return;
  const auto max_rank = static_cast<Rank>(view.alphabet());
  Plt plt = build_plt(view.db, max_rank);
  std::vector<Item> item_of(max_rank);
  for (Rank r = 1; r <= max_rank; ++r) item_of[r - 1] = view.item_of(r);
  std::vector<Item> suffix;
  mine_plt_conditional(plt, item_of, suffix, min_support, sink, options);
}

}  // namespace plt::core
