#include "core/partition.hpp"

#include <algorithm>

#include "kernels/kernels.hpp"

namespace plt::core {

namespace {
constexpr std::size_t kInitialIndexSize = 16;
// Rehash when entries exceed 70% of slots.
bool over_loaded(std::size_t entries, std::size_t slots) {
  return entries * 10 >= slots * 7;
}
}  // namespace

Partition::Partition(std::uint32_t length) : length_(length) {
  PLT_ASSERT(length_ >= 1, "partition length must be >= 1");
  index_.assign(kInitialIndexSize, 0);
}

std::uint64_t Partition::hash(std::span<const Pos> v) {
  // Kernel-backed lane hash. Every backend computes the same value
  // (kernels contract rule #1), so index layout and any hash-ordered
  // iteration downstream are backend-independent.
  return kernels::active().hash_positions(v.data(), v.size());
}

bool Partition::keys_equal(EntryId id, std::span<const Pos> v) const {
  return kernels::active().equals_positions(arena_.data() + entries_[id].offset,
                                            v.data(), length_);
}

Partition::EntryId Partition::find(std::span<const Pos> v) const {
  PLT_ASSERT(v.size() == length_, "vector length must match the partition");
  const std::uint64_t h = hash(v);
  const std::size_t mask = index_.size() - 1;
  for (std::size_t slot = h & mask;; slot = (slot + 1) & mask) {
    const std::uint32_t stored = index_[slot];
    if (stored == 0) return kNoEntry;
    const EntryId id = stored - 1;
    if (keys_equal(id, v)) return id;
  }
}

Partition::EntryId Partition::add(std::span<const Pos> v, Count freq,
                                  bool& created) {
  PLT_ASSERT(v.size() == length_, "vector length must match the partition");
  if (over_loaded(entries_.size() + 1, index_.size())) grow_index();
  const std::uint64_t h = hash(v);
  const std::size_t mask = index_.size() - 1;
  std::size_t slot = h & mask;
  for (;; slot = (slot + 1) & mask) {
    const std::uint32_t stored = index_[slot];
    if (stored == 0) break;
    const EntryId id = stored - 1;
    if (keys_equal(id, v)) {
      entries_[id].freq += freq;
      created = false;
      return id;
    }
  }
  // New entry: append to the arena.
  PLT_ASSERT(arena_.size() + length_ <= 0xffffffffull,
             "partition arena exceeds 32-bit offsets");
  const auto offset = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), v.begin(), v.end());
  Entry e;
  e.offset = offset;
  e.sum = vector_sum(v);
  e.freq = freq;
  entries_.push_back(e);
  const auto id = static_cast<EntryId>(entries_.size() - 1);
  index_[slot] = id + 1;
  created = true;
  return id;
}

std::size_t Partition::reset() {
  arena_.clear();
  entries_.clear();
  std::fill(index_.begin(), index_.end(), 0u);
  return memory_usage();
}

void Partition::reserve(std::size_t entries) {
  entries_.reserve(entries);
  arena_.reserve(entries * length_);
  while (over_loaded(entries, index_.size())) grow_index();
}

void Partition::grow_index() {
  std::vector<std::uint32_t> old;
  old.swap(index_);
  index_.assign(old.size() * 2, 0);
  const std::size_t mask = index_.size() - 1;
  for (const std::uint32_t stored : old) {
    if (stored == 0) continue;
    const EntryId id = stored - 1;
    std::size_t slot = hash(positions(id)) & mask;
    while (index_[slot] != 0) slot = (slot + 1) & mask;
    index_[slot] = stored;
  }
}

Count Partition::total_freq() const {
  Count total = 0;
  for (const Entry& e : entries_) total += e.freq;
  return total;
}

std::size_t Partition::memory_usage() const {
  return arena_.capacity() * sizeof(Pos) +
         entries_.capacity() * sizeof(Entry) +
         index_.capacity() * sizeof(std::uint32_t);
}

}  // namespace plt::core
