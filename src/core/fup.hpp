// FUP-style incremental frequent-itemset maintenance (Cheung, Han, Ng &
// Wong, ICDE'96): given the mining result of an old database and a batch of
// newly arrived transactions, compute the result of the combined database
// while rescanning the old data only for the few "loser" candidates that
// the increment promotes. Key pruning fact: an itemset absent from the old
// result has old count <= old_min_support - 1, so it can only reach the new
// threshold if its increment count >= new_min_support - old_min_support + 1.
#pragma once

#include "core/itemset_collector.hpp"
#include "core/miner.hpp"

namespace plt::core {

struct FupResult {
  FrequentItemsets itemsets;        ///< exact result for old_db ∪ delta
  std::size_t winner_candidates = 0; ///< old-frequent itemsets re-counted
                                     ///  on the delta only
  std::size_t loser_candidates = 0;  ///< new candidates counted on the
                                     ///  delta
  std::size_t rescanned = 0;         ///< candidates that needed an old-db
                                     ///  counting pass
  std::size_t old_db_passes = 0;     ///< level-batched old-db scans
};

/// Updates `old_frequent` (the complete result of mining `old_db` at
/// `old_min_support`) after appending `delta`, producing the exact result
/// at `new_min_support`. Requires new_min_support >= old_min_support
/// (the FUP setting: the threshold does not drop).
FupResult fup_update(const tdb::Database& old_db,
                     const FrequentItemsets& old_frequent,
                     Count old_min_support, const tdb::Database& delta,
                     Count new_min_support);

}  // namespace plt::core
