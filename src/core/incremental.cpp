#include "core/incremental.hpp"

#include <algorithm>
#include <stdexcept>

namespace plt::core {

IncrementalPlt::IncrementalPlt(Item max_item)
    : max_item_(max_item),
      plt_(std::max<Rank>(1, max_item)),
      item_supports_(static_cast<std::size_t>(max_item) + 1, 0) {
  PLT_ASSERT(max_item >= 1, "the item universe must be non-empty");
}

std::span<const Pos> IncrementalPlt::encode(
    std::span<const Item> transaction) const {
  scratch_.assign(transaction.begin(), transaction.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  if (!scratch_.empty() &&
      (scratch_.front() < 1 || scratch_.back() > max_item_))
    throw std::invalid_argument("item id outside [1, max_item]");
  pos_scratch_.clear();
  pos_scratch_.reserve(scratch_.size());
  Item prev = 0;
  for (const Item item : scratch_) {
    pos_scratch_.push_back(item - prev);
    prev = item;
  }
  return pos_scratch_;
}

void IncrementalPlt::add(std::span<const Item> transaction) {
  const std::span<const Pos> v = encode(transaction);
  if (v.empty()) return;
  plt_.add(v, 1);
  for (const Item item : scratch_) item_supports_[item] += 1;
  ++transactions_;
}

void IncrementalPlt::remove(std::span<const Item> transaction) {
  const std::span<const Pos> v = encode(transaction);
  if (v.empty()) return;
  Partition* partition =
      plt_.partition(static_cast<std::uint32_t>(v.size()));
  const auto id =
      partition ? partition->find(v) : Partition::kNoEntry;
  if (id == Partition::kNoEntry || partition->entry(id).freq == 0)
    throw std::invalid_argument(
        "remove: transaction has no remaining occurrences");
  partition->entry(id).freq -= 1;
  for (const Item item : scratch_) item_supports_[item] -= 1;
  --transactions_;
}

void IncrementalPlt::add_all(const tdb::Database& db) {
  for (std::size_t t = 0; t < db.size(); ++t) add(db[t]);
}

Count IncrementalPlt::item_support(Item item) const {
  if (item < 1 || item > max_item_) return 0;
  return item_supports_[item];
}

FrequentItemsets IncrementalPlt::mine(Count min_support,
                                      const ConditionalOptions& options)
    const {
  FrequentItemsets out;
  if (transactions_ == 0) return out;

  // Working copy with only the live entries (removals leave zero-frequency
  // tombstones in the maintained structure).
  Plt working(plt_.max_rank());
  plt_.for_each([&](Plt::Ref, std::span<const Pos> v,
                    const Partition::Entry& e) {
    if (e.freq > 0) working.add(v, e.freq);
  });

  // Ranks are raw item ids, so the rank -> item map is the identity.
  std::vector<Item> item_of(max_item_);
  for (Item i = 1; i <= max_item_; ++i) item_of[i - 1] = i;
  std::vector<Item> suffix;
  const auto sink = collect_into(out);
  mine_plt_conditional(working, item_of, suffix, min_support, sink,
                       options);
  return out;
}

tdb::Database IncrementalPlt::to_database() const {
  tdb::Database db;
  std::vector<Item> row;
  plt_.for_each([&](Plt::Ref, std::span<const Pos> v,
                    const Partition::Entry& e) {
    if (e.freq == 0) return;
    row.clear();
    Item acc = 0;
    for (const Pos p : v) {
      acc += p;
      row.push_back(acc);
    }
    for (Count c = 0; c < e.freq; ++c) db.add(row);
  });
  return db;
}

std::size_t IncrementalPlt::memory_usage() const {
  return plt_.memory_usage() + item_supports_.capacity() * sizeof(Count) +
         scratch_.capacity() * sizeof(Item) +
         pos_scratch_.capacity() * sizeof(Pos);
}

}  // namespace plt::core
