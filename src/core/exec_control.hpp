// Cooperative execution control for long-running mines: a shared
// cancellation token plus an optional wall-clock deadline and an
// approximate memory budget, checked by every algorithm path at projection
// boundaries (per rank, per level, per partition task). A tripped control
// latches the first terminal status; the mine unwinds cleanly and returns
// whatever itemsets were already emitted, with MineResult::status saying
// why it stopped.
//
// The handle is a shared_ptr over atomic state: copy it freely across
// threads, cancel from any of them. should_stop() is a handful of relaxed
// atomic operations (plus one steady_clock read when a deadline is set), so
// checking once per projection keeps overhead well under the 2% target.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

namespace plt::core {

enum class MineStatus {
  kCompleted,         ///< ran to the end; results are exhaustive
  kCancelled,         ///< token cancelled; results are a prefix
  kDeadlineExceeded,  ///< wall-clock deadline passed mid-mine
  kBudgetExceeded     ///< approximate memory use crossed the budget
};

const char* to_string(MineStatus status);

/// Resilience counters surfaced through MineResult / OocStats so the cost
/// and activity of the control/failpoint/CRC machinery is visible.
struct ResilienceStats {
  std::uint64_t control_checks = 0;      ///< should_stop() evaluations
  std::uint64_t failpoint_hits = 0;      ///< injected faults fired
  std::uint64_t crc_verifications = 0;   ///< blob/checkpoint CRCs verified
  std::uint64_t checkpoint_records = 0;  ///< OOC rank records written

  void merge(const ResilienceStats& other);
};

class MiningControl {
 public:
  /// A fresh, unlimited control (never trips until configured).
  MiningControl();

  /// Convenience: a control whose deadline is `budget` from now.
  static MiningControl with_deadline(std::chrono::nanoseconds budget);

  /// Requests cooperative cancellation; thread-safe, idempotent.
  void request_cancel();
  bool cancel_requested() const;

  /// Trips the control `budget` from now (steady clock).
  void set_deadline_after(std::chrono::nanoseconds budget);

  /// Trips the control when a checker reports more than `bytes` in use.
  /// 0 = unlimited.
  void set_memory_budget(std::size_t bytes);
  std::size_t memory_budget() const;

  /// True when any limit is configured (miners may skip checks otherwise).
  bool limited() const;

  /// The cooperative check: records the evaluation, trips on
  /// cancellation/deadline/budget and latches the first failure. Returns
  /// true when mining must stop. `approx_bytes` is the caller's estimate of
  /// current memory in use (pass 0 when unknown; the budget then only trips
  /// on callers that do report).
  bool should_stop(std::size_t approx_bytes = 0) const;

  /// kCompleted until a check trips; afterwards the latched terminal
  /// status. Latching is sticky: later checks return the first cause.
  MineStatus status() const;

  /// should_stop() evaluations so far (across all copies of the handle).
  std::uint64_t checks() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace plt::core
