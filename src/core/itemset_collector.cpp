#include "core/itemset_collector.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace plt::core {

void FrequentItemsets::add(std::span<const Item> items, Count support) {
  PLT_ASSERT(!items.empty(), "the empty itemset is not reported");
  items_.insert(items_.end(), items.begin(), items.end());
  offsets_.push_back(items_.size());
  supports_.push_back(support);
}

std::vector<std::size_t> FrequentItemsets::level_counts() const {
  std::vector<std::size_t> counts;
  for (std::size_t i = 0; i < size(); ++i) {
    const std::size_t len = itemset(i).size();
    if (len >= counts.size()) counts.resize(len + 1);
    counts[len] += 1;
  }
  return counts;
}

std::size_t FrequentItemsets::max_length() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < size(); ++i)
    best = std::max(best, itemset(i).size());
  return best;
}

void FrequentItemsets::canonicalize() {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto ia = itemset(a), ib = itemset(b);
    if (ia.size() != ib.size()) return ia.size() < ib.size();
    if (!std::equal(ia.begin(), ia.end(), ib.begin()))
      return std::lexicographical_compare(ia.begin(), ia.end(), ib.begin(),
                                          ib.end());
    // Duplicate itemsets (possible in hand-built collections) order by
    // support so canonicalization is fully deterministic.
    return supports_[a] < supports_[b];
  });
  FrequentItemsets sorted;
  for (const std::size_t i : order) sorted.add(itemset(i), supports_[i]);
  *this = std::move(sorted);
}

bool FrequentItemsets::equal(FrequentItemsets a, FrequentItemsets b) {
  a.canonicalize();
  b.canonicalize();
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.supports_[i] != b.supports_[i]) return false;
    const auto ia = a.itemset(i), ib = b.itemset(i);
    if (!std::equal(ia.begin(), ia.end(), ib.begin(), ib.end())) return false;
  }
  return true;
}

Count FrequentItemsets::find_support(std::span<const Item> items) const {
  for (std::size_t i = 0; i < size(); ++i) {
    const auto cand = itemset(i);
    if (cand.size() == items.size() &&
        std::equal(cand.begin(), cand.end(), items.begin()))
      return supports_[i];
  }
  return 0;
}

std::string FrequentItemsets::to_string() const {
  FrequentItemsets copy = *this;
  copy.canonicalize();
  std::ostringstream out;
  for (std::size_t i = 0; i < copy.size(); ++i) {
    const auto items = copy.itemset(i);
    out << '{';
    for (std::size_t j = 0; j < items.size(); ++j) {
      if (j) out << ',';
      out << items[j];
    }
    out << "}:" << copy.support(i) << '\n';
  }
  return out.str();
}

std::size_t FrequentItemsets::memory_usage() const {
  return items_.capacity() * sizeof(Item) +
         offsets_.capacity() * sizeof(std::uint64_t) +
         supports_.capacity() * sizeof(Count);
}

ItemsetSink collect_into(FrequentItemsets& out) {
  return [&out](std::span<const Item> items, Count support) {
    out.add(items, support);
  };
}

}  // namespace plt::core
