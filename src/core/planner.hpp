// Adaptive execution planner: picks the mining strategy and the kernel
// backend per conditional subtree from cheap dataset statistics, instead
// of trusting one fixed choice for the whole mine. The crossover benches
// (BENCH_topdown_crossover.json, BENCH_kernels.json) show the winners are
// predictable from density / transaction length / support skew — the same
// observation arXiv 1312.4800 makes for extraction time in general — so
// the planner turns those measured thresholds into a small cost model:
//
//   * root strategy  — topdown expansion when every transaction is short
//     and the threshold is a sliver of the database (the regime where the
//     2^len table beats projection); Eclat when the view is sparse enough
//     that tidsets stay short; pooled-conditional otherwise.
//   * per-subtree    — single-path expansion when a conditional database
//     collapses to one vector (every subset shares one support; no
//     projection needed), tidset intersection for small shallow shapes,
//     pooled projection for everything else.
//   * kernel backend — per data-parallel call: tiny inputs take the scalar
//     table (SIMD setup costs more than it saves), wide inputs keep the
//     process-active SIMD table.
//
// All strategies agree bit-for-bit (DESIGN.md S25 has the emission-order
// argument), so plans change time, never output. Every decision is
// recorded as plan.* trace counters so a plan is auditable after the run.
//
// Selection mirrors the kernel-backend idiom: `--plan=fixed|adaptive` /
// MineOptions::plan / the PLT_PLAN environment variable, default fixed so
// golden traces and published numbers are untouched.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "tdb/stats.hpp"
#include "util/common.hpp"

namespace plt::core {

enum class PlanMode {
  kFixed,    ///< the requested algorithm runs as-is (default)
  kAdaptive  ///< the planner picks root + per-subtree strategy and backend
};

const char* plan_name(PlanMode mode);

/// Selects the process-wide plan mode by name: "" keeps the current
/// selection (a no-op that returns true), "fixed"/"adaptive" switch.
/// Returns false on unknown names so CLI flags can refuse to run. When
/// nothing ever selects, the PLT_PLAN environment variable (read at first
/// use) decides, defaulting to fixed.
bool select_plan(const std::string& name);

/// The process-wide plan mode (resolving PLT_PLAN on first use).
PlanMode active_plan();

/// Thresholds of the cost model. Defaults are seeded from the committed
/// crossover benches (see DESIGN.md S25 for the calibration trail); every
/// knob is overridable so tests can force each branch and deployments can
/// re-calibrate without rebuilding.
struct PlanConfig {
  // -- root strategy (the facade's algorithm choice) --
  /// Off by default: BENCH_topdown_crossover.json measures the pooled
  /// conditional engine winning every cell of the §6 crossover sweep down
  /// to minsup 1 (pooled frames + single-path expansion erase the regime
  /// the paper anticipated for top-down), so the calibrated seed never
  /// selects an expansion that only loses. The gates below describe the
  /// regime top-down would need; tests and re-calibrations flip this on.
  bool allow_root_topdown = false;
  bool allow_root_eclat = true;
  /// Top-down only when the longest transaction fits this cap (the 2^len
  /// subset table; also capped by MineOptions::topdown_max_transaction_len)
  /// ...
  std::uint32_t root_topdown_max_len = 14;
  /// ... the relative threshold is below this (BENCH_topdown_crossover:
  /// projection wins above the crossover, expansion below it) ...
  double root_topdown_max_minsup_frac = 0.005;
  /// ... and the ranked view is dense enough that most subsets survive.
  double root_topdown_min_density = 0.15;
  /// Eclat root, gate one: sparse views keep tidsets short. Density at or
  /// below this hands the whole mine to the vertical baseline.
  double root_eclat_max_density = 0.02;
  /// Eclat root, gate two: a shallow lattice. When the longest *ranked*
  /// transaction fits this cap and the relative threshold is at least
  /// root_eclat_min_minsup_frac, few candidates survive and the vertical
  /// walk skips projection setup entirely (E20: 1.5x on the short-dense
  /// high-support cells; the same cells regress once the threshold falls
  /// and the lattice deepens, hence the frac floor).
  std::size_t root_eclat_max_len = 8;
  double root_eclat_min_minsup_frac = 0.01;

  // -- per-subtree strategy (inside the pooled engine) --
  bool allow_subtree_single_path = true;
  bool allow_subtree_eclat = true;
  /// Tidset subtrees only for small shapes: at most this many conditional
  /// records over at most this many surviving ranks. Seeded tight (the
  /// E20 calibration sweep shows larger shapes regress up to 2x on
  /// short-dense mid-support cells while 8x8 tracks or beats pooled
  /// everywhere measured).
  std::size_t eclat_max_records = 8;
  /// ... over at most this many surviving ranks.
  Rank eclat_max_ranks = 8;
  /// Depth-0 veto: partitions denser than this keep the pooled walk even
  /// for small shapes (near-full tidsets intersect to near-full tidsets,
  /// so the projection arena is the cheaper representation).
  double eclat_max_partition_density = 0.85;

  // -- kernel backend, per data-parallel call --
  /// Calls over fewer u32 words than this take the scalar table
  /// (BENCH_kernels: SIMD needs a few cache lines to amortize setup).
  std::size_t wide_min_positions = 64;
};

/// Per-subtree shape handed to the cost model: everything the engine
/// already knows after peeling + counting one conditional database.
struct SubtreeShape {
  std::size_t records = 0;    ///< conditional-db entries
  std::size_t positions = 0;  ///< peeled positions (arena u32 words)
  Rank child_ranks = 0;       ///< ranks surviving the support filter
  bool single_path = false;   ///< every record maps to the same full vector
};

/// Immutable once configured; shared by reference across parallel workers
/// (decisions are pure functions of shape + config, so plans — and
/// therefore traces — are deterministic and thread-count-invariant).
class Planner {
 public:
  enum class Root { kConditional, kTopDown, kEclat };
  enum class Subtree { kPooled, kSinglePath, kEclat };

  explicit Planner(const PlanConfig& config = {});

  const PlanConfig& config() const { return config_; }

  /// Root strategy from the ranked view's global + per-partition stats.
  /// `topdown_guard_len` is MineOptions::topdown_max_transaction_len: the
  /// planner never picks an expansion the guard would overflow on.
  Root choose_root(const tdb::Stats& stats,
                   std::span<const tdb::PartitionStats> partitions,
                   Count min_support,
                   std::uint32_t topdown_guard_len) const;

  /// Strategy for one conditional subtree.
  Subtree choose_subtree(const SubtreeShape& shape,
                         const tdb::PartitionStats* partition) const;

  /// Whether the single-path probe (an O(positions) scan) is worth
  /// running. For a depth-0 subtree pass its top-level rank: the
  /// partition stats answer in O(1) when every partition at or above the
  /// rank has density 1.0 — then every record the walk can have fed into
  /// CD_rank (original partition members and prefixes reinserted from
  /// higher ranks alike) is the full path, so the subtree is exactly
  /// single-path. Anything else falls back to the scan, which also
  /// catches databases that collapse to one vector only after filtering.
  /// Pass rank 0 for deeper subtrees (no partition identity).
  bool wants_single_path_probe(Rank top_rank,
                               bool* resolved_single_path) const;

  /// Backend choice for one data-parallel call over `words` u32 values:
  /// false = the scalar table, true = the process-active (SIMD) table.
  bool wide_for(std::size_t words) const {
    return words >= config_.wide_min_positions;
  }
  const kernels::Dispatch& dispatch(bool wide) const {
    return wide ? *wide_ : *narrow_;
  }

  /// Hands over the rank-partition stats of the ranked view being mined
  /// (facade only; parallel/OOC engines mine inside a partition and leave
  /// this unset, making shape-only decisions). Depth-0 subtree j of the
  /// walk is CD_j — partition j plus prefixes reinserted from higher
  /// ranks — so the stats are a proxy for its signals and an exact O(1)
  /// single-path witness via the all-full suffix (see planner.cpp).
  void set_partition_stats(std::vector<tdb::PartitionStats> stats);
  /// Stats for top-level rank `j` (null when unknown).
  const tdb::PartitionStats* partition(Rank j) const {
    if (j == 0 || j > partition_stats_.size()) return nullptr;
    return &partition_stats_[j - 1];
  }

 private:
  PlanConfig config_;
  const kernels::Dispatch* narrow_;  ///< scalar reference table
  const kernels::Dispatch* wide_;    ///< process-active table at plan time
  std::vector<tdb::PartitionStats> partition_stats_;
  /// full_suffix_[j-1]: every partition k >= j is all full paths (or
  /// empty), i.e. CD_j is provably single-path without scanning it.
  std::vector<char> full_suffix_;
};

}  // namespace plt::core
