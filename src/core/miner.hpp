// Unified mining facade: one entry point over every algorithm in the repo —
// the paper's two PLT approaches plus the literature baselines — so tests,
// examples and benches drive them identically.
#pragma once

#include <string>

#include "core/exec_control.hpp"
#include "core/itemset_collector.hpp"
#include "core/projection_pool.hpp"
#include "obs/trace.hpp"
#include "tdb/database.hpp"
#include "tdb/remap.hpp"

namespace plt::core {

enum class Algorithm {
  kPltConditional,      ///< §5.1 Algorithm 3 (with item filtering)
  kPltConditionalNoFilter,  ///< literal Algorithm 3 (ablation)
  kPltTopDownCanonical, ///< §5 Algorithm 2, lazy tail-drops
  kPltTopDownSweep,     ///< §5 Algorithm 2, prefixes at construction
  kAis,                 ///< Agrawal, Imielinski & Swami, SIGMOD'93 [1]
  kApriori,             ///< Agrawal & Srikant, VLDB'94 [2]
  kAprioriTid,          ///< same paper [2], encoded-database counting
  kDhp,                 ///< Park, Chen & Yu, SIGMOD'95 [5] (hash pruning)
  kDic,                 ///< Brin et al., SIGMOD'97 [7] (dynamic counting)
  kPartition,           ///< Savasere et al., VLDB'95 (two-pass chunks)
  kFpGrowth,            ///< Han, Pei & Yin, SIGMOD'00 [3]
  kHMine,               ///< Pei et al., ICDM'01 [8] (pseudo-projection)
  kEclat,               ///< Zaki, TKDE'00 [12] (tidsets)
  kDEclat,              ///< Zaki & Gouda, KDD'03 [16] (diffsets)
  kBruteForce           ///< oracle, exponential — tests only
};

const char* algorithm_name(Algorithm algorithm);

/// All registered algorithms in a stable order (brute force excluded).
const std::vector<Algorithm>& all_algorithms();

struct MineOptions {
  tdb::ItemOrder item_order = tdb::ItemOrder::kById;
  /// Passed through to the top-down guards.
  std::uint32_t topdown_max_transaction_len = 24;
  /// Cooperative cancellation / deadline / memory budget, checked at
  /// projection boundaries on every algorithm path. Null = unlimited.
  const MiningControl* control = nullptr;
  /// Kernel backend for this and subsequent mines ("", "auto", "scalar",
  /// "simd", "sse42", "avx2" — see kernels::select_backend). Empty keeps
  /// the process-wide selection; the switch is process-wide because every
  /// backend computes identical functions. Unknown or unavailable names
  /// throw std::invalid_argument.
  std::string kernel_backend;
  /// Execution plan ("", "fixed", "adaptive" — see core::select_plan).
  /// Empty keeps the process-wide selection (default fixed, or PLT_PLAN).
  /// Adaptive lets the planner pick the root strategy and per-subtree
  /// strategies/backends from dataset statistics; the mined output is
  /// byte-identical either way. Unknown names throw std::invalid_argument.
  std::string plan;
  /// Cost-model thresholds used when the adaptive plan is active.
  PlanConfig plan_config;
};

struct MineResult {
  FrequentItemsets itemsets;
  double build_seconds = 0.0;  ///< structure construction (incl. first scan)
  double mine_seconds = 0.0;   ///< enumeration
  std::size_t structure_bytes = 0;  ///< logical footprint of the built index
  /// Projection-engine counters (zero for algorithms that don't project
  /// through the pooled engine — baselines, top-down).
  ProjectionStats projection;
  /// kCompleted for an exhaustive mine; otherwise why it stopped early.
  /// Non-completed runs still carry every itemset emitted before the stop.
  MineStatus status = MineStatus::kCompleted;
  /// Control/failpoint/CRC activity during this mine (deltas for the
  /// process-wide counters, exact for the control's own checks).
  ResilienceStats resilience;
  /// Set when status == kBudgetExceeded: how to retry within the budget
  /// (e.g. switch to the out-of-core blob path).
  std::string degradation_hint;
  /// Root strategy the adaptive planner executed ("conditional",
  /// "topdown", "eclat", or "fallback-conditional" after a top-down
  /// overflow); empty under the fixed plan or for non-planned algorithms.
  std::string plan_root;
  /// The aggregated span tree of this mine (see obs/trace.hpp), set when
  /// runtime tracing is enabled (PLT_TRACE / obs::set_enabled) and no outer
  /// TraceSession was active — an outer session (plt-mine --trace, bench
  /// --trace) collects across calls instead and this stays null.
  std::shared_ptr<const obs::TraceNode> trace;
};

/// Mines `db` at absolute support `min_support` with the chosen algorithm.
/// Itemsets are reported in original item ids and are exactly comparable
/// across algorithms via FrequentItemsets::equal.
MineResult mine(const tdb::Database& db, Count min_support,
                Algorithm algorithm, const MineOptions& options = {});

}  // namespace plt::core
