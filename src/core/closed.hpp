// Closed and maximal frequent itemsets — the standard FIMI condensed
// representations (the paper's references [13]/[16] mine these; CLOSET/
// FPmax era). Computed as post-passes over a complete mining result:
//   * closed:  no proper superset has the same support
//   * maximal: no proper superset is frequent
// Both are derived with a superset-index over the result, not by re-mining,
// so any of the repo's miners can feed them.
#pragma once

#include "core/itemset_collector.hpp"

namespace plt::core {

/// Filters `frequent` down to the closed itemsets. The input must be a
/// complete mining result (every frequent itemset present with its exact
/// support) — true for the output of every miner in this repo.
FrequentItemsets closed_itemsets(const FrequentItemsets& frequent);

/// Filters `frequent` down to the maximal itemsets.
FrequentItemsets maximal_itemsets(const FrequentItemsets& frequent);

/// Verifies the condensed-representation invariants; used by tests and the
/// bench as a self-check. Returns an empty string when consistent, else a
/// description of the first violation found:
///   * every maximal itemset is closed
///   * every frequent itemset is a subset of some maximal one
///   * every frequent itemset's support equals the max support of the
///     closed supersets containing it.
std::string check_condensed(const FrequentItemsets& frequent,
                            const FrequentItemsets& closed,
                            const FrequentItemsets& maximal);

}  // namespace plt::core
