#include "core/miner.hpp"

#include "baselines/ais.hpp"
#include "baselines/apriori.hpp"
#include "baselines/brute.hpp"
#include "baselines/dic.hpp"
#include "baselines/partition_alg.hpp"
#include "baselines/eclat.hpp"
#include "baselines/fpgrowth.hpp"
#include "baselines/hmine.hpp"
#include <optional>
#include <stdexcept>

#include "core/builder.hpp"
#include "core/conditional.hpp"
#include "core/planner.hpp"
#include "core/topdown.hpp"
#include "core/validate.hpp"
#include "kernels/kernels.hpp"
#include "tdb/stats.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace plt::core {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPltConditional: return "plt-conditional";
    case Algorithm::kPltConditionalNoFilter: return "plt-cond-nofilter";
    case Algorithm::kPltTopDownCanonical: return "plt-topdown";
    case Algorithm::kPltTopDownSweep: return "plt-topdown-sweep";
    case Algorithm::kAis: return "ais";
    case Algorithm::kApriori: return "apriori";
    case Algorithm::kAprioriTid: return "apriori-tid";
    case Algorithm::kDhp: return "dhp";
    case Algorithm::kDic: return "dic";
    case Algorithm::kPartition: return "partition";
    case Algorithm::kFpGrowth: return "fp-growth";
    case Algorithm::kHMine: return "h-mine";
    case Algorithm::kEclat: return "eclat";
    case Algorithm::kDEclat: return "declat";
    case Algorithm::kBruteForce: return "brute-force";
  }
  return "?";
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kPltConditional,     Algorithm::kPltConditionalNoFilter,
      Algorithm::kPltTopDownCanonical, Algorithm::kPltTopDownSweep,
      Algorithm::kAis,                Algorithm::kApriori,
      Algorithm::kAprioriTid,
      Algorithm::kDhp,                Algorithm::kDic,
      Algorithm::kPartition,          Algorithm::kFpGrowth,
      Algorithm::kHMine,              Algorithm::kEclat,
      Algorithm::kDEclat};
  return algorithms;
}

namespace {

// Snapshots the process-wide resilience counters so a MineResult can report
// the deltas attributable to this mine (the control's checks are exact).
struct ResilienceScope {
  const MiningControl* control;
  std::uint64_t checks0 = 0;
  std::uint64_t failpoint0 = 0;
  std::uint64_t crc0 = 0;

  explicit ResilienceScope(const MiningControl* c) : control(c) {
    if (control != nullptr) checks0 = control->checks();
    failpoint0 = FailpointRegistry::instance().total_hits();
    crc0 = crc32c_verifications();
  }

  void finish(MineResult& result) const {
    result.resilience.failpoint_hits =
        FailpointRegistry::instance().total_hits() - failpoint0;
    result.resilience.crc_verifications = crc32c_verifications() - crc0;
    if (control == nullptr) return;
    result.resilience.control_checks = control->checks() - checks0;
    result.status = control->status();
    if (result.status == MineStatus::kBudgetExceeded)
      result.degradation_hint =
          "memory budget exceeded: serialize the database with encode_plt() "
          "and mine the blob out of core via mine_from_blob(), which streams "
          "one rank bucket at a time";
  }
};

// Runs the top-down path for the adaptive root plan. Returns false when
// the expansion guard overflowed — that throw happens before anything is
// emitted, so the caller can fall back to the conditional walk cleanly.
bool run_planned_topdown(const RankedView& view, Count min_support,
                         const ItemsetSink& sink, const MineOptions& options,
                         MineResult& result) {
  Timer mine_timer;
  TopDownOptions topdown;
  topdown.max_transaction_len = options.topdown_max_transaction_len;
  topdown.control = options.control;
  TopDownStats stats;
  try {
    mine_topdown(view, min_support, sink, TopDownVariant::kCanonical,
                 topdown, &stats);
  } catch (const TopDownOverflow&) {
    return false;
  }
  result.structure_bytes = stats.table_bytes;
  result.mine_seconds = mine_timer.seconds();
  return true;
}

MineResult mine_plt_family(const tdb::Database& db, Count min_support,
                           Algorithm algorithm, const MineOptions& options,
                           Planner* planner) {
  MineResult result;
  Timer build_timer;
  RankedView view = build_ranked_view(db, min_support, options.item_order);
  const auto sink = collect_into(result.itemsets);

  switch (algorithm) {
    case Algorithm::kPltConditional:
    case Algorithm::kPltConditionalNoFilter: {
      if (view.alphabet() == 0) break;
      const auto max_rank = static_cast<Rank>(view.alphabet());
      // Root planning: only the default algorithm is up for grabs (the
      // no-filter ablation must stay the literal Algorithm 3), and only
      // when the adaptive plan is active. The view's global + partition
      // stats are one extra pass; every decision lands in plan.* counters.
      if (planner != nullptr && algorithm == Algorithm::kPltConditional) {
        Planner::Root root;
        {
          PLT_SPAN("plan");
          const tdb::Stats stats = tdb::compute_stats(view.db);
          auto partitions =
              tdb::compute_all_partition_stats(view.db, max_rank);
          root = planner->choose_root(stats, partitions, min_support,
                                      options.topdown_max_transaction_len);
          planner->set_partition_stats(std::move(partitions));
        }
        if (root == Planner::Root::kTopDown) {
          result.build_seconds = build_timer.seconds();
          if (run_planned_topdown(view, min_support, sink, options,
                                  result)) {
            PLT_TRACE_COUNT("plan.root.topdown", 1);
            result.plan_root = "topdown";
            return result;
          }
          // Guard overflow before any emission: fall through to the
          // conditional walk, planner still attached.
          PLT_TRACE_COUNT("plan.root.fallback", 1);
          result.plan_root = "fallback-conditional";
        } else if (root == Planner::Root::kEclat) {
          PLT_TRACE_COUNT("plan.root.eclat", 1);
          result.plan_root = "eclat";
          baselines::BaselineStats stats;
          baselines::mine_eclat(db, min_support, sink, &stats,
                                options.control);
          result.build_seconds = stats.build_seconds;
          result.mine_seconds = stats.mine_seconds;
          result.structure_bytes = stats.structure_bytes;
          return result;
        } else {
          PLT_TRACE_COUNT("plan.root.conditional", 1);
          result.plan_root = "conditional";
        }
      }
      Plt plt = build_plt(view.db, max_rank);
      maybe_validate(plt, "mine: build_plt");
      result.build_seconds = build_timer.seconds();
      result.structure_bytes = plt.memory_usage();
      Timer mine_timer;
      ConditionalOptions cond;
      cond.filter_conditional_items =
          (algorithm == Algorithm::kPltConditional);
      std::vector<Item> item_of(max_rank);
      for (Rank r = 1; r <= max_rank; ++r) item_of[r - 1] = view.item_of(r);
      std::vector<Item> suffix;
      ProjectionEngine engine;
      engine.set_control(options.control, result.structure_bytes);
      if (algorithm == Algorithm::kPltConditional)
        engine.set_planner(planner);
      engine.mine(plt, item_of, suffix, min_support, sink, cond);
      result.projection = engine.stats();
      result.mine_seconds = mine_timer.seconds();
      break;
    }
    case Algorithm::kPltTopDownCanonical:
    case Algorithm::kPltTopDownSweep: {
      result.build_seconds = build_timer.seconds();
      Timer mine_timer;
      TopDownOptions topdown;
      topdown.max_transaction_len = options.topdown_max_transaction_len;
      topdown.control = options.control;
      TopDownStats stats;
      mine_topdown(view, min_support, sink,
                   algorithm == Algorithm::kPltTopDownCanonical
                       ? TopDownVariant::kCanonical
                       : TopDownVariant::kSweep,
                   topdown, &stats);
      result.structure_bytes = stats.table_bytes;
      result.mine_seconds = mine_timer.seconds();
      break;
    }
    default:
      PLT_ASSERT(false, "not a PLT-family algorithm");
  }
  return result;
}

/// The latched MineStatus as a trace counter ("status.completed", ...) so
/// resilience traces record why a mine stopped — names are static, the
/// resilience-path tests read them back from the aggregated tree.
/// [[maybe_unused]]: its only caller is PLT_TRACE_COUNT, which compiles
/// away under -DPLT_OBS=OFF.
[[maybe_unused]] const char* status_counter_name(MineStatus status) {
  switch (status) {
    case MineStatus::kCompleted: return "status.completed";
    case MineStatus::kCancelled: return "status.cancelled";
    case MineStatus::kDeadlineExceeded: return "status.deadline-exceeded";
    case MineStatus::kBudgetExceeded: return "status.budget-exceeded";
  }
  return "status.unknown";
}

MineResult mine_impl(const tdb::Database& db, Count min_support,
                     Algorithm algorithm, const MineOptions& options,
                     Planner* planner) {
  const MiningControl* control = options.control;
  const ResilienceScope scope(control);
  switch (algorithm) {
    case Algorithm::kPltConditional:
    case Algorithm::kPltConditionalNoFilter:
    case Algorithm::kPltTopDownCanonical:
    case Algorithm::kPltTopDownSweep: {
      MineResult result = mine_plt_family(db, min_support, algorithm,
                                          options, planner);
      scope.finish(result);
      return result;
    }
    case Algorithm::kAis:
    case Algorithm::kApriori:
    case Algorithm::kAprioriTid:
    case Algorithm::kDhp:
    case Algorithm::kDic:
    case Algorithm::kPartition: {
      MineResult result;
      baselines::BaselineStats stats;
      const auto sink = collect_into(result.itemsets);
      switch (algorithm) {
        case Algorithm::kAis:
          baselines::mine_ais(db, min_support, sink, &stats, control);
          break;
        case Algorithm::kApriori:
          baselines::mine_apriori(db, min_support, sink, &stats, control);
          break;
        case Algorithm::kAprioriTid:
          baselines::mine_apriori_tid(db, min_support, sink, &stats,
                                      control);
          break;
        case Algorithm::kDhp:
          baselines::mine_dhp(db, min_support, sink, &stats, 1 << 16,
                              control);
          break;
        case Algorithm::kDic:
          baselines::mine_dic(db, min_support, sink, &stats, {}, control);
          break;
        default:
          baselines::mine_partition(db, min_support, sink, &stats, {},
                                    control);
          break;
      }
      result.build_seconds = stats.build_seconds;
      result.mine_seconds = stats.mine_seconds;
      result.structure_bytes = stats.structure_bytes;
      scope.finish(result);
      return result;
    }
    case Algorithm::kHMine: {
      MineResult result;
      baselines::BaselineStats stats;
      baselines::mine_hmine(db, min_support, collect_into(result.itemsets),
                            &stats, control);
      result.build_seconds = stats.build_seconds;
      result.mine_seconds = stats.mine_seconds;
      result.structure_bytes = stats.structure_bytes;
      scope.finish(result);
      return result;
    }
    case Algorithm::kFpGrowth: {
      MineResult result;
      baselines::BaselineStats stats;
      baselines::mine_fpgrowth(db, min_support,
                               collect_into(result.itemsets), &stats,
                               control);
      result.build_seconds = stats.build_seconds;
      result.mine_seconds = stats.mine_seconds;
      result.structure_bytes = stats.structure_bytes;
      scope.finish(result);
      return result;
    }
    case Algorithm::kEclat:
    case Algorithm::kDEclat: {
      MineResult result;
      baselines::BaselineStats stats;
      const auto miner = algorithm == Algorithm::kEclat
                             ? baselines::mine_eclat
                             : baselines::mine_declat;
      miner(db, min_support, collect_into(result.itemsets), &stats,
            control);
      result.build_seconds = stats.build_seconds;
      result.mine_seconds = stats.mine_seconds;
      result.structure_bytes = stats.structure_bytes;
      scope.finish(result);
      return result;
    }
    case Algorithm::kBruteForce: {
      MineResult result;
      Timer timer;
      baselines::mine_brute_force(db, min_support,
                                  collect_into(result.itemsets));
      result.mine_seconds = timer.seconds();
      scope.finish(result);
      return result;
    }
  }
  PLT_ASSERT(false, "unknown algorithm");
  return {};
}

}  // namespace

MineResult mine(const tdb::Database& db, Count min_support,
                Algorithm algorithm, const MineOptions& options) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  if (!kernels::select_backend(options.kernel_backend))
    throw std::invalid_argument("mine: unknown or unavailable kernel "
                                "backend \"" +
                                options.kernel_backend + '"');
  if (!select_plan(options.plan))
    throw std::invalid_argument("mine: unknown plan \"" + options.plan +
                                "\" (expected fixed or adaptive)");
  // The planner is per-mine (it captures the post-selection kernel tables
  // and, on the facade path, the view's partition stats).
  std::optional<Planner> planner;
  if (active_plan() == PlanMode::kAdaptive)
    planner.emplace(options.plan_config);
  // Every mining path funnels through here, so this one wrapper gives all
  // fifteen algorithms their root spans: "mine" > "<algorithm-name>" >
  // (whatever the path records below — the baselines stay coarse, the PLT
  // paths add build/rank-loop/projection detail).
  obs::AutoSession trace_session;
  MineResult result;
  {
    PLT_SPAN("mine");
    obs::Span algorithm_span(algorithm_name(algorithm));
    result = mine_impl(db, min_support, algorithm, options,
                       planner ? &*planner : nullptr);
    // status_counter_name maps every MineStatus onto a registered
    // status.* literal. plt-lint: allow(span-registry)
    PLT_TRACE_COUNT(status_counter_name(result.status), 1);
    PLT_TRACE_COUNT("itemsets-total", result.itemsets.size());
  }
  result.trace = trace_session.finish();
  return result;
}

}  // namespace plt::core
