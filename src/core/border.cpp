#include "core/border.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "baselines/counting.hpp"
#include "datagen/transforms.hpp"

namespace plt::core {

namespace {

struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const Item i : s) {
      h ^= i;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

using ItemsetSet = std::unordered_set<Itemset, ItemsetHash>;

}  // namespace

std::vector<Itemset> negative_border(
    const FrequentItemsets& frequent,
    const std::vector<Item>& universe) {
  ItemsetSet in_frequent;
  in_frequent.reserve(frequent.size() * 2);
  std::size_t max_len = 0;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    in_frequent.insert(Itemset(z.begin(), z.end()));
    max_len = std::max(max_len, z.size());
  }

  std::vector<Itemset> border;
  // Level 1: universe items that are not frequent.
  for (const Item item : universe)
    if (!in_frequent.count(Itemset{item})) border.push_back({item});

  // Level k >= 2: join frequent (k-1)-itemsets, prune by all-subsets-in-F,
  // keep those not themselves in F.
  std::vector<Itemset> level;
  for (std::size_t i = 0; i < frequent.size(); ++i)
    if (frequent.itemset(i).size() == 1) {
      const auto z = frequent.itemset(i);
      level.emplace_back(z.begin(), z.end());
    }
  std::sort(level.begin(), level.end());

  Itemset probe;
  for (std::size_t k = 2; k <= max_len + 1 && !level.empty(); ++k) {
    std::vector<Itemset> next_level;
    for (std::size_t a = 0; a < level.size(); ++a) {
      for (std::size_t b = a + 1; b < level.size(); ++b) {
        if (!std::equal(level[a].begin(), level[a].end() - 1,
                        level[b].begin()))
          break;
        Itemset candidate = level[a];
        candidate.push_back(level[b].back());
        // All proper (k-1)-subsets must be frequent for the candidate to be
        // minimal-infrequent or frequent.
        bool all_subsets_frequent = true;
        for (std::size_t drop = 0;
             drop + 2 < candidate.size() && all_subsets_frequent; ++drop) {
          probe.clear();
          for (std::size_t j = 0; j < candidate.size(); ++j)
            if (j != drop) probe.push_back(candidate[j]);
          all_subsets_frequent = in_frequent.count(probe) > 0;
        }
        if (!all_subsets_frequent) continue;
        if (in_frequent.count(candidate)) {
          next_level.push_back(std::move(candidate));
        } else {
          border.push_back(std::move(candidate));
        }
      }
    }
    level = std::move(next_level);
    std::sort(level.begin(), level.end());
  }
  return border;
}

ToivonenResult mine_toivonen(const tdb::Database& db, Count min_support,
                             const ToivonenOptions& options) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  PLT_ASSERT(options.sample_fraction > 0.0 && options.sample_fraction <= 1.0,
             "sample_fraction must be in (0,1]");
  ToivonenResult result;

  std::vector<Item> universe;
  {
    const auto supports = db.item_supports();
    for (Item i = 0; i < supports.size(); ++i)
      if (supports[i] > 0) universe.push_back(i);
  }

  for (std::size_t attempt = 0; attempt < options.max_retries; ++attempt) {
    ++result.attempts;
    const auto sample = datagen::sample_transactions(
        db, options.sample_fraction, options.seed + attempt);
    if (sample.empty()) continue;

    // Escalate the safety margin on every retry: a failed round means the
    // sample missed true patterns, so the next round must cast wider.
    const double lowering =
        options.lowering *
        std::pow(0.7, static_cast<double>(attempt));
    const auto sample_threshold = std::max<Count>(
        1, static_cast<Count>(lowering * static_cast<double>(min_support) *
                              options.sample_fraction));
    const auto sample_frequent =
        mine(sample, sample_threshold, options.sample_algorithm).itemsets;

    // Candidates: sample-frequent itemsets + their negative border.
    std::vector<Itemset> candidates;
    candidates.reserve(sample_frequent.size());
    for (std::size_t i = 0; i < sample_frequent.size(); ++i) {
      const auto z = sample_frequent.itemset(i);
      candidates.emplace_back(z.begin(), z.end());
    }
    const std::size_t frequent_count = candidates.size();
    const auto border = negative_border(sample_frequent, universe);
    candidates.insert(candidates.end(), border.begin(), border.end());
    result.border_size = border.size();
    result.candidates = candidates.size();

    // One exact counting pass over the full database.
    baselines::CountingTrie trie(candidates);
    for (std::size_t t = 0; t < db.size(); ++t) trie.count(db[t]);

    // If any border itemset is frequent, the sample missed patterns —
    // retry with a fresh sample.
    bool missed = false;
    for (std::size_t c = frequent_count; c < candidates.size(); ++c)
      if (trie.support(c) >= min_support) {
        missed = true;
        break;
      }
    if (missed) continue;

    for (std::size_t c = 0; c < frequent_count; ++c)
      if (trie.support(c) >= min_support)
        result.itemsets.add(candidates[c], trie.support(c));
    return result;
  }

  // Every sample failed: fall back to exact mining.
  ++result.attempts;
  result.used_fallback = true;
  result.itemsets = mine(db, min_support, Algorithm::kPltConditional).itemsets;
  return result;
}

}  // namespace plt::core
