// The negative border and Toivonen-style sample-and-verify mining
// (Toivonen, VLDB'96) — the classic answer to the paper's §1 concern that
// "the large size of the database ... must be scanned several times":
// mine a small sample at a lowered threshold, then verify the candidates
// (sample-frequent itemsets plus their negative border) against the full
// database in ONE exact counting pass. If no border itemset turns out
// frequent, the result is provably exact.
#pragma once

#include <optional>

#include "core/itemset_collector.hpp"
#include "core/miner.hpp"

namespace plt::core {

/// The negative border of a frequent collection over the given frequent
/// 1-items: the minimal itemsets NOT in `frequent` whose every proper
/// subset is. Computed by Apriori-style join+prune over each level.
/// `frequent_items` must be the sorted frequent 1-items of the universe.
std::vector<Itemset> negative_border(const FrequentItemsets& frequent,
                                     const std::vector<Item>& frequent_items);

struct ToivonenOptions {
  double sample_fraction = 0.25;
  /// Threshold-lowering factor applied on the sample (smaller = safer);
  /// each retry multiplies it by a further 0.7.
  double lowering = 0.6;
  std::uint64_t seed = 1;
  std::size_t max_retries = 3;
  Algorithm sample_algorithm = Algorithm::kPltConditional;
};

struct ToivonenResult {
  FrequentItemsets itemsets;   ///< exact result (verified on the full db)
  std::size_t attempts = 0;    ///< sampling rounds used
  std::size_t candidates = 0;  ///< itemsets counted in the final full pass
  std::size_t border_size = 0; ///< negative-border size of the final round
  bool used_fallback = false;  ///< every sample round missed; mined exactly
};

/// Mines `db` exactly at `min_support` via sampling. The result is always
/// exact: a round whose negative border contains a frequent itemset is
/// rejected and retried, and after `max_retries` failed rounds the function
/// falls back to direct exact mining (used_fallback = true).
ToivonenResult mine_toivonen(const tdb::Database& db, Count min_support,
                             const ToivonenOptions& options = {});

}  // namespace plt::core
