// The conditional approach (§5.1, Algorithm 3): pattern-growth mining over
// the PLT. Ranks are processed high to low; the entries whose vector sum
// equals rank j are exactly the projected transactions whose highest item is
// j, so support(suffix ∪ {j}) is the frequency mass of bucket j. Each such
// entry's prefix is re-inserted into the working PLT (so lower ranks see the
// transaction without j) and, when the extension is frequent, also forms j's
// conditional PLT, which is mined recursively. The anti-monotone property is
// fully exploited: infrequent extensions terminate their branch, and
// conditional databases are filtered to locally-frequent items.
#pragma once

#include "core/itemset_collector.hpp"
#include "core/plt.hpp"
#include "core/rank.hpp"

namespace plt::core {

struct ConditionalOptions {
  /// Filter locally-infrequent items when building conditional PLTs
  /// (on = the full anti-monotone optimization; off = paper's literal
  /// Algorithm 3, still correct but slower). Ablated in benches.
  bool filter_conditional_items = true;
};

/// Mines every frequent itemset of the view through the sink (original ids).
void mine_conditional(const RankedView& view, Count min_support,
                      const ItemsetSink& sink,
                      const ConditionalOptions& options = {});

/// Lower-level entry point shared by the parallel partition miner, the
/// incremental store and the out-of-core blob miner: mines `plt` (consumed)
/// whose local rank r reports as original item `item_of[r-1]`, with
/// `suffix` (original item ids) already fixed. Runs on a pooled
/// ProjectionEngine (see core/projection_pool.hpp); callers that mine many
/// PLTs should hold an engine themselves and call its mine() directly so
/// projection arenas recycle across calls.
void mine_plt_conditional(Plt& plt, const std::vector<Item>& item_of,
                          std::vector<Item>& suffix, Count min_support,
                          const ItemsetSink& sink,
                          const ConditionalOptions& options);

/// The original recursive Algorithm 3, which builds a fresh conditional PLT
/// (new arenas, hash indexes, sum buckets) at every recursion node. Kept as
/// the reference implementation: differential tests and the E17 bench pin
/// the pooled engine against it.
void mine_plt_conditional_recursive(Plt& plt,
                                    const std::vector<Item>& item_of,
                                    std::vector<Item>& suffix,
                                    Count min_support, const ItemsetSink& sink,
                                    const ConditionalOptions& options);

/// The one bucket traversal behind Algorithm 3's "extract CD_j" step, shared
/// by conditional_database(), the recursive reference miner and the pooled
/// engine: visits the prefix of every projectable entry of bucket `j`
/// (length > 1, freq > 0) and returns the bucket's total frequency mass,
/// which is support(suffix ∪ {j}).
template <typename Fn>  // Fn(std::span<const Pos> prefix, Count freq)
Count for_each_bucket_prefix(const Plt& plt, Rank j, Fn&& fn) {
  Count support = 0;
  for (const Plt::Ref ref : plt.bucket(j)) {
    const auto& e = plt.entry(ref);
    support += e.freq;
    if (ref.length > 1 && e.freq > 0) {
      const auto v = plt.positions(ref);
      fn(v.first(v.size() - 1), e.freq);
    }
  }
  return support;
}

/// A conditional PLT plus the translation from its compact local ranks back
/// to the parent's ranks.
struct ConditionalProjection {
  Plt plt{1};
  std::vector<Rank> to_parent;  ///< local rank r -> parent rank

  bool empty() const { return to_parent.empty(); }
};

/// Builds the conditional PLT for an extracted conditional database
/// (vectors over parent ranks < parent_max_rank), filtering ranks whose
/// local support is below `min_support` when `filter_items` is set, and
/// compacting the survivors to ranks 1..m.
ConditionalProjection make_conditional_plt(
    const std::vector<std::pair<PosVec, Count>>& cond, Rank parent_max_rank,
    Count min_support, bool filter_items);

/// Builds item j's conditional database from a PLT snapshot *without*
/// mutating it — returns the (prefix vector, freq) list whose sums < j.
/// Exposed for the paper-artifact bench (Figure 5) and tests.
std::vector<std::pair<PosVec, Count>> conditional_database(const Plt& plt,
                                                           Rank j);

}  // namespace plt::core
