// Sliding-window stream mining on top of the incremental PLT: the window
// holds the last W transactions; arrivals are O(1) vector increments and
// the expired transaction is decremented back out. Mining at any moment is
// exactly batch mining of the window content (tests enforce it) — the
// "large, continuously growing databases" setting of the paper's §1 made
// concrete.
#pragma once

#include <deque>

#include "core/incremental.hpp"

namespace plt::core {

class SlidingWindowMiner {
 public:
  /// Window of the most recent `capacity` transactions over items
  /// 1..max_item.
  SlidingWindowMiner(std::size_t capacity, Item max_item);

  /// Pushes one transaction; evicts the oldest when the window is full.
  void push(std::span<const Item> transaction);
  void push(std::initializer_list<Item> transaction) {
    push(std::span<const Item>(transaction.begin(), transaction.size()));
  }

  std::size_t size() const { return window_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Frequent itemsets of the current window at absolute support
  /// `min_support` (counted within the window).
  FrequentItemsets mine(Count min_support) const { return plt_.mine(min_support); }

  /// Support of one item within the window.
  Count item_support(Item item) const { return plt_.item_support(item); }

  /// Current window content, oldest first.
  tdb::Database window_database() const;

  std::size_t memory_usage() const;

 private:
  std::size_t capacity_;
  IncrementalPlt plt_;
  std::deque<std::vector<Item>> window_;
};

}  // namespace plt::core
