#include "core/builder.hpp"

#include "obs/trace.hpp"

namespace plt::core {

Plt build_plt(const tdb::Database& ranked_db, Rank max_rank,
              const BuildOptions& options) {
  PLT_SPAN("build-plt");
  PLT_TRACE_COUNT("vectors-inserted", ranked_db.size());
  Plt plt(max_rank);
  PosVec v;
  for (std::size_t t = 0; t < ranked_db.size(); ++t) {
    const auto ranks = ranked_db[t];
    if (ranks.empty()) continue;
    v.clear();
    Rank prev = 0;
    for (const Rank r : ranks) {
      v.push_back(r - prev);
      prev = r;
    }
    plt.add(v, 1);
    if (options.insert_prefixes) {
      // Insert [p1..pm] for every m < k; prefixes share the arena layout so
      // repeated spans over `v` avoid any copying.
      for (std::size_t m = v.size() - 1; m >= 1; --m)
        plt.add(std::span<const Pos>(v.data(), m), 1);
    }
  }
  return plt;
}

BuiltPlt build_from_database(const tdb::Database& db, Count min_support,
                             tdb::ItemOrder order,
                             const BuildOptions& options) {
  BuiltPlt built{build_ranked_view(db, min_support, order), Plt(1)};
  const auto max_rank =
      static_cast<Rank>(built.view.alphabet() == 0 ? 1
                                                   : built.view.alphabet());
  built.plt = build_plt(built.view.db, max_rank, options);
  return built;
}

}  // namespace plt::core
