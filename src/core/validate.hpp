// Whole-structure validity checking for the PLT (S24): every invariant the
// paper states about the structure, machine-checked over a live tree so
// tests, fuzzers and the PLT_VALIDATE escape hatch can reject a corrupted
// or mis-merged structure instead of silently mining garbage.
//
// Invariants checked, mapped to the paper (see DESIGN.md S24 for the full
// table):
//   * Definition 4.1.2 — every position value is >= 1.
//   * Lemma 4.1.1     — each entry's stored sum equals the prefix-sum of
//                       its positions (Rank/pos consistency).
//   * Lemma 4.1.2     — length/sum bounds: a vector of length k satisfies
//                       k <= sum <= max_rank (the encoding is injective
//                       only inside these bounds).
//   * Definition 4.1.3 — partition D_k holds vectors of exactly length k;
//                       the sum index buckets each vector under its sum,
//                       exactly once.
//   * Lexicographic tree shape (§4.2, Figure 3(b)) — materialized children
//                       are ordered by position ascending with strictly
//                       increasing, in-range ranks along every path.
//   * Property 4.1.1 (injectivity in practice) — no duplicate vectors in a
//                       partition, and the hash index resolves every stored
//                       vector back to its own entry.
//   * Support monotonicity along paths — for prefix-closed tables (§5
//                       top-down part A, insert_prefixes builds), a
//                       prefix's frequency is >= each extension's.
//
// The checks are always compiled in; the *hooks* in the mining paths
// (facade build, parallel build post-merge, per-rank CDs of mine_parallel,
// OOC conditional projections, decode_plt) only fire when validation is
// enabled via the PLT_VALIDATE env var, set_validation_enabled(), or the
// plt-mine --validate flag. The validator opens no trace spans, so golden
// traces are identical with validation on or off.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/plt.hpp"

namespace plt::core {

struct ValidateOptions {
  /// Check support monotonicity along tree paths (freq(prefix) >=
  /// freq(extension)). Only meaningful for prefix-closed tables built with
  /// BuildOptions::insert_prefixes (§5 top-down part A); conditional-mode
  /// tables legitimately store extensions without their prefixes.
  bool expect_prefix_closed = false;
};

/// One violated invariant: where it was found and what went wrong.
struct ValidationIssue {
  std::string where;    ///< e.g. "D3 entry 7" or "tree node [1,2]"
  std::string message;  ///< which invariant failed and the observed values
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  std::size_t vectors_checked = 0;  ///< partition entries visited
  std::size_t nodes_checked = 0;    ///< materialized tree nodes visited

  bool ok() const { return issues.empty(); }
  /// Multi-line rendering of every issue (empty string when ok).
  std::string to_string() const;
};

/// Validates one partition in isolation. `max_rank` bounds the Lemma 4.1.2
/// sum check; pass 0 when the alphabet is unknown (bounds are then skipped).
ValidationReport validate(const Partition& partition, Rank max_rank = 0);

/// Validates a whole PLT: every partition, the sum index, and the
/// materialized lexicographic tree shape.
ValidationReport validate(const Plt& plt, const ValidateOptions& options = {});

/// Raised by validate_or_throw; carries the full report text.
class ValidationError : public std::runtime_error {
 public:
  explicit ValidationError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Throws ValidationError with `context` and the issue list when the PLT is
/// invalid; returns normally otherwise.
void validate_or_throw(const Plt& plt, const char* context,
                       const ValidateOptions& options = {});

/// True when structural validation is requested for this process: the
/// PLT_VALIDATE env var (unset/"0"/"off" = disabled, anything else =
/// enabled), overridden by set_validation_enabled().
bool validation_enabled();

/// Programmatic override of the PLT_VALIDATE env var (plt-mine --validate
/// and tests use this). Thread-safe.
void set_validation_enabled(bool enabled);

/// Convenience used at the mining-path hook points: validate_or_throw, but
/// only when validation_enabled().
inline void maybe_validate(const Plt& plt, const char* context,
                           const ValidateOptions& options = {}) {
  if (validation_enabled()) validate_or_throw(plt, context, options);
}

}  // namespace plt::core
