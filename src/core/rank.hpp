// The Rank function (Definition 4.1.1): a bijection between the frequent
// items of a database and 1..n that preserves the chosen order. A RankedView
// bundles the rank map with the re-expressed database so the PLT layer can
// treat item ids and ranks as the same thing.
#pragma once

#include "tdb/database.hpp"
#include "tdb/remap.hpp"

namespace plt::core {

/// A database whose items *are* ranks 1..alphabet (dense, gap-free), plus
/// the mapping back to the original item ids.
struct RankedView {
  tdb::Database db;      ///< transactions over ranks 1..alphabet
  tdb::Remap remap;      ///< rank <-> original item translation
  Count min_support = 0; ///< the threshold the view was built for

  std::size_t alphabet() const { return remap.alphabet_size(); }

  /// Original item id for a rank (ranks are 1-based).
  Item item_of(Rank rank) const { return remap.unmap(rank); }

  /// Support of a rank's item in the source database.
  Count support_of(Rank rank) const {
    PLT_ASSERT(rank >= 1 && rank <= remap.support.size(),
               "rank out of range");
    return remap.support[rank - 1];
  }
};

/// First scan of Algorithm 1: find frequent items, assign ranks, and
/// re-express the database over ranks (infrequent items dropped, empty
/// transactions removed).
RankedView build_ranked_view(const tdb::Database& db, Count min_support,
                             tdb::ItemOrder order = tdb::ItemOrder::kById);

/// Converts a mined itemset of ranks back to sorted original item ids.
Itemset ranks_to_items(const RankedView& view,
                       std::span<const Rank> ranks);

}  // namespace plt::core
