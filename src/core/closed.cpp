#include "core/closed.hpp"

#include <algorithm>
#include <unordered_map>

namespace plt::core {

namespace {

// Index: for each itemset id, the ids of itemsets exactly one item larger
// that contain it would be expensive to build directly; instead we bucket
// itemsets by size and test supersets within the next size bucket via a
// hash of the candidate superset (drop-one-item probing), which is
// O(Σ |itemset|) rather than O(n²).
struct VecHash {
  std::size_t operator()(const Itemset& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const Item i : s) {
      h ^= i;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

using Lookup = std::unordered_map<Itemset, Count, VecHash>;

Lookup build_lookup(const FrequentItemsets& frequent) {
  Lookup lookup;
  lookup.reserve(frequent.size() * 2);
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto items = frequent.itemset(i);
    lookup.emplace(Itemset(items.begin(), items.end()),
                   frequent.support(i));
  }
  return lookup;
}

}  // namespace

FrequentItemsets closed_itemsets(const FrequentItemsets& frequent) {
  // An itemset is non-closed iff some frequent superset has the same
  // support. Supports are non-increasing in supersets, so it suffices to
  // look one level up: for every (k+1)-itemset Z, each drop-one subset S
  // gets sup(Z) as a candidate "best superset support".
  std::unordered_map<Itemset, Count, VecHash> best_superset_support;
  best_superset_support.reserve(frequent.size());
  Itemset subset;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    if (z.size() < 2) continue;
    for (std::size_t drop = 0; drop < z.size(); ++drop) {
      subset.clear();
      for (std::size_t j = 0; j < z.size(); ++j)
        if (j != drop) subset.push_back(z[j]);
      auto& slot = best_superset_support[subset];
      slot = std::max(slot, frequent.support(i));
    }
  }

  FrequentItemsets closed;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    const auto it =
        best_superset_support.find(Itemset(z.begin(), z.end()));
    const bool is_closed =
        it == best_superset_support.end() || it->second < frequent.support(i);
    if (is_closed) closed.add(z, frequent.support(i));
  }
  return closed;
}

FrequentItemsets maximal_itemsets(const FrequentItemsets& frequent) {
  // An itemset is non-maximal iff it is the drop-one subset of some
  // frequent itemset.
  std::unordered_map<Itemset, bool, VecHash> has_superset;
  has_superset.reserve(frequent.size());
  Itemset subset;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    if (z.size() < 2) continue;
    for (std::size_t drop = 0; drop < z.size(); ++drop) {
      subset.clear();
      for (std::size_t j = 0; j < z.size(); ++j)
        if (j != drop) subset.push_back(z[j]);
      has_superset[subset] = true;
    }
  }
  FrequentItemsets maximal;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    if (!has_superset.count(Itemset(z.begin(), z.end())))
      maximal.add(z, frequent.support(i));
  }
  return maximal;
}

std::string check_condensed(const FrequentItemsets& frequent,
                            const FrequentItemsets& closed,
                            const FrequentItemsets& maximal) {
  const Lookup closed_lookup = build_lookup(closed);

  // Every maximal itemset must be closed.
  for (std::size_t i = 0; i < maximal.size(); ++i) {
    const auto z = maximal.itemset(i);
    if (!closed_lookup.count(Itemset(z.begin(), z.end())))
      return "maximal itemset is not closed";
  }

  // Every frequent itemset must be covered by a maximal superset and its
  // support must be recoverable from the closed set (max support over
  // closed supersets).
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    bool covered = false;
    for (std::size_t m = 0; m < maximal.size() && !covered; ++m) {
      const auto zm = maximal.itemset(m);
      covered = std::includes(zm.begin(), zm.end(), z.begin(), z.end());
    }
    if (!covered) return "frequent itemset not covered by any maximal";

    Count best = 0;
    for (std::size_t c = 0; c < closed.size(); ++c) {
      const auto zc = closed.itemset(c);
      if (std::includes(zc.begin(), zc.end(), z.begin(), z.end()))
        best = std::max(best, closed.support(c));
    }
    if (best != frequent.support(i))
      return "support not recoverable from the closed set";
  }
  return "";
}

}  // namespace plt::core
