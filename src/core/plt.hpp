// The Positional Lexicographic Tree in its table form (Figure 3(a)): one
// Partition per vector length, plus an index of entries by vector sum.
// The sum index is what makes the conditional approach cheap: vectors whose
// sum equals rank j are exactly the (projected) transactions whose highest
// item is j (§5.1).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/partition.hpp"

namespace plt::core {

class Plt {
 public:
  /// Reference to one stored vector: which partition (by length) and which
  /// entry within it.
  struct Ref {
    std::uint32_t length;
    Partition::EntryId id;
  };

  /// `max_rank` is the alphabet size n; vector sums never exceed it.
  explicit Plt(Rank max_rank);

  Rank max_rank() const { return max_rank_; }

  /// Longest vector currently stored (0 when empty).
  std::uint32_t max_len() const;

  /// Adds `freq` occurrences of the vector. Returns its Ref.
  Ref add(std::span<const Pos> v, Count freq);

  /// Frequency of an exact vector (0 if absent).
  Count freq_of(std::span<const Pos> v) const;

  /// Empties the PLT and re-targets it at a (possibly different) alphabet of
  /// `max_rank` ranks, retaining every partition arena, hash index and sum
  /// bucket's capacity. This is what makes conditional projections recyclable
  /// instead of freshly allocated. Returns the heap bytes retained.
  std::size_t reset(Rank max_rank);

  /// Pre-sizes this PLT so that merge_plt(*this, source) appends without
  /// incremental growth: partitions up to source's longest vector exist with
  /// entry/arena headroom, and sum buckets are reserved.
  void reserve_for_merge(const Plt& source);

  /// The partition for length k (created on demand by add()); may be null.
  const Partition* partition(std::uint32_t length) const;
  Partition* partition(std::uint32_t length);

  /// Entries whose vector sum equals `sum`, in insertion order.
  std::span<const Ref> bucket(Rank sum) const;

  std::span<const Pos> positions(Ref ref) const {
    return partitions_[ref.length - 1].positions(ref.id);
  }
  const Partition::Entry& entry(Ref ref) const {
    return partitions_[ref.length - 1].entry(ref.id);
  }
  Partition::Entry& entry(Ref ref) {
    return partitions_[ref.length - 1].entry(ref.id);
  }

  /// Number of distinct vectors across all partitions.
  std::size_t num_vectors() const;

  /// Total frequency mass (Σ freq over all entries).
  Count total_freq() const;

  std::size_t memory_usage() const;

  /// Multi-line rendering of the matrices structure, partition by partition,
  /// matching Figure 3(a): "D2: [1,1] sum=2 freq=3" etc.
  std::string to_string() const;

  /// Stable iteration over every entry of every partition.
  template <typename Fn>  // Fn(Ref, span<const Pos>, const Partition::Entry&)
  void for_each(Fn&& fn) const {
    for (std::uint32_t k = 1; k <= partitions_.size(); ++k) {
      partitions_[k - 1].for_each(
          [&](Partition::EntryId id, std::span<const Pos> v,
              const Partition::Entry& e) { fn(Ref{k, id}, v, e); });
    }
  }

 private:
  Rank max_rank_;
  std::vector<Partition> partitions_;          // partitions_[k-1] = D_k
  std::vector<std::vector<Ref>> buckets_;      // buckets_[s-1] = sum == s
};

}  // namespace plt::core
