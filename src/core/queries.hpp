// Query-style mining entry points on top of the PLT miners:
//   * top-k frequent itemsets (threshold search over the monotone
//     count-vs-support curve)
//   * constrained mining — all frequent itemsets containing a given set,
//     answered on the projected database (the conditional idea applied to
//     an arbitrary item constraint instead of a single suffix item).
#pragma once

#include <optional>

#include "core/itemset_collector.hpp"
#include "core/miner.hpp"

namespace plt::core {

struct TopKOptions {
  std::size_t min_length = 1;  ///< ignore itemsets shorter than this
  Algorithm algorithm = Algorithm::kPltConditional;
};

/// The k most frequent itemsets (ties at the cut kept, so the result can
/// exceed k by the tie group). Uses a descending threshold search: supports
/// are monotone in the threshold, so the search runs O(log |D|) mining
/// passes. Returns fewer than k when the database has fewer itemsets.
FrequentItemsets mine_top_k(const tdb::Database& db, std::size_t k,
                            const TopKOptions& options = {});

struct ConstrainedResult {
  /// Support of the constraint itemset itself; nullopt when the constraint
  /// is not frequent at min_support (then `itemsets` is empty).
  std::optional<Count> constraint_support;
  /// Frequent itemsets that contain every constraint item (including the
  /// constraint itself when frequent).
  FrequentItemsets itemsets;
};

/// Mines all frequent itemsets (at `min_support` over the FULL database)
/// that contain every item of `constraint`: the database is projected onto
/// the transactions containing the constraint, the projection is mined, and
/// the constraint is folded back into each result.
ConstrainedResult mine_containing(const tdb::Database& db, Count min_support,
                                  const Itemset& constraint);

}  // namespace plt::core
