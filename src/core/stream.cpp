#include "core/stream.hpp"

#include <algorithm>

namespace plt::core {

SlidingWindowMiner::SlidingWindowMiner(std::size_t capacity, Item max_item)
    : capacity_(capacity), plt_(max_item) {
  PLT_ASSERT(capacity >= 1, "window capacity must be >= 1");
}

void SlidingWindowMiner::push(std::span<const Item> transaction) {
  // Normalize exactly the way IncrementalPlt will see it, so eviction can
  // replay the same multiset element.
  std::vector<Item> row(transaction.begin(), transaction.end());
  std::sort(row.begin(), row.end());
  row.erase(std::unique(row.begin(), row.end()), row.end());
  if (row.empty()) return;

  if (window_.size() == capacity_) {
    plt_.remove(window_.front());
    window_.pop_front();
  }
  plt_.add(row);
  window_.push_back(std::move(row));
}

tdb::Database SlidingWindowMiner::window_database() const {
  tdb::Database db;
  for (const auto& row : window_) db.add(row);
  return db;
}

std::size_t SlidingWindowMiner::memory_usage() const {
  std::size_t bytes = plt_.memory_usage();
  for (const auto& row : window_) bytes += row.capacity() * sizeof(Item);
  return bytes;
}

}  // namespace plt::core
