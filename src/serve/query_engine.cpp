#include "serve/query_engine.hpp"

#include <algorithm>

#include "core/subset_check.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace plt::serve {

namespace {

/// The per-bucket cooperative check. The "serve.deadline" failpoint
/// simulates the wall clock expiring at exactly this checkpoint, so the
/// typed-DEADLINE contract is testable without timing races.
bool deadline_tripped(const core::MiningControl& control) {
#if PLT_FAILPOINTS_ENABLED
  try {
    PLT_FAILPOINT("serve.deadline");
  } catch (const InjectedFault&) {
    return true;
  }
#endif
  return control.should_stop();
}

/// Position vector of a strictly-increasing rank sequence (gaps).
core::PosVec ranks_to_positions(std::span<const Rank> ranks) {
  core::PosVec positions;
  positions.reserve(ranks.size());
  Rank prev = 0;
  for (const Rank rank : ranks) {
    positions.push_back(rank - prev);
    prev = rank;
  }
  return positions;
}

Response deadline_response(const Request& request) {
  Response response;
  response.opcode = request.opcode;
  response.request_id = request.request_id;
  response.status = Status::kDeadlineExceeded;
  response.detail = "deadline exceeded mid-scan";
  return response;
}

}  // namespace

bool blob_support(const LoadedBlob& blob, std::span<const Rank> ranks,
                  const core::MiningControl& control, QueryCounters& counters,
                  Count& support) {
  support = 0;
  if (ranks.empty()) {
    support = blob.total_freq;
    return true;
  }
  const Rank top = ranks.back();
  if (top > blob.max_rank) return true;  // item outside the alphabet
  // Fast path: a singleton's support is the load-time cache.
  if (ranks.size() == 1) {
    support = blob.item_support[top - 1];
    return true;
  }
  for (Rank sum = top; sum <= blob.max_rank; ++sum) {
    if (deadline_tripped(control)) {
      ++counters.deadline_exceeded;
      return false;
    }
    ++counters.buckets_scanned;
    compress::decode_bucket(blob.bytes, blob.index, sum,
                            [&](std::span<const Pos> positions, Count freq) {
                              ++counters.entries_tested;
                              if (core::ranks_subset_of(ranks, positions))
                                support += freq;
                            });
  }
  return true;
}

Response answer_query(const Request& request, const LoadedBlob& blob,
                      const core::MiningControl& control,
                      QueryCounters& counters) {
  PLT_SPAN("serve-query");
  Response response;
  response.opcode = request.opcode;
  response.request_id = request.request_id;

  switch (request.opcode) {
    case Opcode::kSupport: {
      if (!blob_support(blob, request.ranks, control, counters,
                        response.support))
        return deadline_response(request);
      break;
    }
    case Opcode::kMembership: {
      // Exact stored vector: it can only live in the bucket whose sum is
      // the itemset's top rank, so one bucket decides.
      const Rank top = request.ranks.back();
      if (top > blob.max_rank) break;  // not stored: member=false, freq=0
      if (deadline_tripped(control)) {
        ++counters.deadline_exceeded;
        return deadline_response(request);
      }
      const core::PosVec target = ranks_to_positions(request.ranks);
      ++counters.buckets_scanned;
      compress::decode_bucket(
          blob.bytes, blob.index, top,
          [&](std::span<const Pos> positions, Count freq) {
            ++counters.entries_tested;
            if (positions.size() == target.size() &&
                std::equal(positions.begin(), positions.end(),
                           target.begin())) {
              response.member = true;
              response.support = freq;
            }
          });
      break;
    }
    case Opcode::kTopK: {
      const std::size_t k = std::min<std::size_t>(
          request.k, blob.ranks_by_support.size());
      response.top.assign(blob.ranks_by_support.begin(),
                          blob.ranks_by_support.begin() +
                              static_cast<std::ptrdiff_t>(k));
      break;
    }
    case Opcode::kRule: {
      // support(A) and support(A ∪ {c}) are two bucket scans; confidence
      // is reported in parts-per-million so the wire stays integral.
      if (!blob_support(blob, request.ranks, control, counters,
                        response.antecedent_support))
        return deadline_response(request);
      std::vector<Rank> with_consequent(request.ranks.begin(),
                                        request.ranks.end());
      with_consequent.insert(
          std::upper_bound(with_consequent.begin(), with_consequent.end(),
                           request.consequent),
          request.consequent);
      if (!blob_support(blob, with_consequent, control, counters,
                        response.support))
        return deadline_response(request);
      response.confidence_ppm =
          response.antecedent_support == 0
              ? 0
              : response.support * 1000000 / response.antecedent_support;
      break;
    }
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kReload:
      response.status = Status::kInternal;
      response.detail = "opcode is not a blob query";
      break;
  }
  return response;
}

}  // namespace plt::serve
