// Thin POSIX socket layer for plt-serve: RAII fds, nonblocking partial
// read/write wrappers, and TCP listen/connect helpers. The wrappers are the
// failpoint seam the robustness suite leans on: arming
// "serve.socket.read" / "serve.socket.write" truncates the next operation
// to a single byte, which exercises exactly the short-read/short-write
// resumption paths a loaded kernel produces naturally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

namespace plt::serve {

/// Hard socket failure (not EOF, not would-block).
struct SocketError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// One nonblocking read. Returns bytes read (> 0), 0 on peer EOF, or -1
/// when the socket has no data right now (EAGAIN). Throws SocketError on a
/// hard failure. The "serve.socket.read" failpoint truncates the attempt
/// to one byte.
std::ptrdiff_t read_some(int fd, std::uint8_t* buffer, std::size_t length);

/// One nonblocking write. Returns bytes written (>= 0; 0 or short when the
/// send buffer is full), or -1 on EAGAIN. EPIPE/ECONNRESET surface as 0 so
/// callers treat a vanished peer like EOF. The "serve.socket.write"
/// failpoint truncates the attempt to one byte.
std::ptrdiff_t write_some(int fd, const std::uint8_t* buffer,
                          std::size_t length);

void set_nonblocking(int fd);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Fills
/// `bound_port` with the actual port. Throws SocketError on failure —
/// notably EADDRINUSE, which plt-serve turns into a non-zero exit.
Fd listen_tcp(std::uint16_t port, std::uint16_t& bound_port);

/// Blocking connect to 127.0.0.1:`port`. Throws SocketError on failure.
Fd connect_tcp(std::uint16_t port);

/// Blocking helpers for the client side: write the whole span / read
/// exactly `length` bytes. read_exact returns false on clean EOF before
/// the first byte; mid-buffer EOF throws.
void write_all(int fd, std::span<const std::uint8_t> bytes);
bool read_exact(int fd, std::uint8_t* buffer, std::size_t length);

}  // namespace plt::serve
