// plt-serve wire protocol (DESIGN.md S27): length-prefixed binary frames
// over TCP, versioned, with typed responses and structured error codes.
//
// Every frame is `u32le length | payload` where `length` counts the payload
// bytes only. Request payloads start with a fixed 16-byte header:
//
//   u32le magic "PLTQ" | u8 version | u8 opcode | u16le blob_id |
//   u32le request_id   | u32le deadline_ms
//
// followed by an opcode-specific body (itemsets are `u16le count` then
// `count` strictly-increasing u32le ranks). Response payloads start with a
// fixed 12-byte header:
//
//   u32le magic "PLTR" | u8 version | u8 opcode | u8 status | u8 zero |
//   u32le request_id
//
// followed by a typed body on kOk, or `u32le detail_len | detail` (ASCII
// diagnostic) on any error status. Responses may arrive in any order —
// the server batches concurrent requests by partition for cache locality —
// so clients correlate by request_id.
//
// Queries are expressed in *rank* space (Definition 4.1.1): the PLT2 blob
// stores position vectors over ranks 1..max_rank and carries no item map,
// so translating original item ids to ranks is the client's job (the shard
// manifest or the mining run that produced the blob holds the mapping).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace plt::serve {

inline constexpr std::uint32_t kRequestMagic = 0x51544C50u;   // "PLTQ" LE
inline constexpr std::uint32_t kResponseMagic = 0x52544C50u;  // "PLTR" LE
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard cap on itemset length in a request body; anything longer is
/// kMalformedBody (position vectors never get near this).
inline constexpr std::size_t kMaxQueryItems = 256;

/// Default cap on a single frame's payload; a declared length above the
/// server's limit is kFrameTooLarge and the connection is closed (the
/// stream cannot be resynchronized without buffering the oversized frame).
inline constexpr std::uint32_t kDefaultMaxFrame = 1u << 20;

enum class Opcode : std::uint8_t {
  kPing = 0,        ///< liveness probe; empty body both ways
  kSupport = 1,     ///< itemset -> support (sum-bucket scan)
  kMembership = 2,  ///< itemset -> stored exactly as a vector? + its freq
  kTopK = 3,        ///< k -> k most supported ranks (cached at blob load)
  kRule = 4,        ///< antecedent + consequent -> supports + confidence
  kStats = 5,       ///< admin: serving stats + plt-trace-v1 JSON dump
  kReload = 6,      ///< admin: atomically reload the configured blobs
};
inline constexpr std::size_t kOpcodeCount = 7;

const char* to_string(Opcode opcode);
bool known_opcode(std::uint8_t raw);

/// Structured error codes. Stream-level errors (kBadMagic, kBadVersion,
/// kFrameTooLarge) additionally close the connection after the response is
/// flushed; request-level errors leave the connection usable.
enum class Status : std::uint8_t {
  kOk = 0,
  kBadMagic = 1,          ///< payload does not start with "PLTQ"
  kBadVersion = 2,        ///< protocol version not understood
  kBadOpcode = 3,         ///< opcode byte not in the table above
  kMalformedBody = 4,     ///< body truncated / ranks not strictly increasing
  kFrameTooLarge = 5,     ///< declared length exceeds the server limit
  kUnknownBlob = 6,       ///< blob_id not loaded
  kDeadlineExceeded = 7,  ///< per-request MiningControl deadline tripped
  kOverloaded = 8,        ///< global in-flight memory budget exhausted
  kShuttingDown = 9,      ///< server is draining
  kInternal = 10,         ///< unexpected server-side failure
};

const char* to_string(Status status);

struct TopEntry {
  Rank rank = 0;
  Count support = 0;
};

/// Decoded request. `ranks` is the itemset for kSupport/kMembership and the
/// antecedent for kRule (strictly increasing, possibly empty for kSupport /
/// kRule where the empty set means "all transactions").
struct Request {
  Opcode opcode = Opcode::kPing;
  std::uint16_t blob_id = 0;
  std::uint32_t request_id = 0;
  std::uint32_t deadline_ms = 0;  ///< 0 = use the server default
  std::vector<Rank> ranks;
  Rank consequent = 0;  ///< kRule
  std::uint32_t k = 0;  ///< kTopK
};

struct Response {
  Opcode opcode = Opcode::kPing;
  Status status = Status::kOk;
  std::uint32_t request_id = 0;
  Count support = 0;             ///< kSupport; kMembership freq; kRule a∪c
  Count antecedent_support = 0;  ///< kRule
  std::uint64_t confidence_ppm = 0;  ///< kRule: support_ac * 1e6 / support_a
  bool member = false;               ///< kMembership
  std::vector<TopEntry> top;         ///< kTopK
  std::uint32_t generation = 0;      ///< kReload / kStats: blob generation
  std::string detail;  ///< error diagnostic, or the kStats JSON document
};

/// Serializes a request/response into a complete frame (length prefix
/// included), ready to write to a socket.
std::vector<std::uint8_t> encode_request(const Request& request);
std::vector<std::uint8_t> encode_response(const Response& response);

/// Result of scanning a receive buffer for one complete frame.
enum class FrameResult {
  kNeedMore,     ///< buffer holds a prefix of a frame; keep reading
  kFrame,        ///< `payload` and `consumed` are set
  kTooLarge,     ///< declared length exceeds `max_frame`
};

/// Extracts the first complete frame from `buffer`. On kFrame, `payload`
/// aliases `buffer` and `consumed` is the total bytes (prefix + payload) to
/// drop from the front.
FrameResult try_frame(std::span<const std::uint8_t> buffer,
                      std::uint32_t max_frame,
                      std::span<const std::uint8_t>& payload,
                      std::size_t& consumed);

/// Decodes a request payload (no length prefix). Returns kOk and fills
/// `out`, or the structured error describing the first problem found.
/// `out.request_id` is filled whenever the header was readable so error
/// responses can still be correlated.
Status decode_request(std::span<const std::uint8_t> payload, Request& out);

/// Decodes a response payload (no length prefix). Returns false on a frame
/// that is not a well-formed response (client-side use; the server is
/// trusted, so this is a sanity check rather than a typed-error channel).
bool decode_response(std::span<const std::uint8_t> payload, Response& out);

}  // namespace plt::serve
