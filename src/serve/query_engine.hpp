// Query execution over one mmap'd blob: the serving counterpart of
// core::support_of, but driven by the BlobIndex sum buckets so a query
// touches only the byte ranges that can possibly contain witnesses.
//
// Support of an itemset with top rank r: any transaction containing the
// itemset contains rank r, and a stored vector's sum is the rank of its
// highest item (Lemma 4.1.1) — so only buckets r..max_rank can hold
// supersets, and the engine scans exactly those, testing each entry with
// the streaming ranks_subset_of check (no decode buffer beyond one vector).
// Membership (exact stored vector) needs one bucket: sum == top rank.
//
// Every bucket boundary is a MiningControl checkpoint: a per-request
// deadline that trips mid-scan aborts the query with the typed
// DEADLINE_EXCEEDED status — never a silent drop. The "serve.deadline"
// failpoint forces that trip deterministically so tests can pin the
// contract without racing a clock.
#pragma once

#include "core/exec_control.hpp"
#include "serve/blob_store.hpp"
#include "serve/protocol.hpp"

namespace plt::serve {

/// Monotonic per-request-class tallies, kept by the caller (the server
/// aggregates per worker; tests pass a scratch instance).
struct QueryCounters {
  std::uint64_t buckets_scanned = 0;
  std::uint64_t entries_tested = 0;
  std::uint64_t deadline_exceeded = 0;
};

/// Answers one already-validated request against one loaded blob. The
/// response carries the request's id/opcode; `status` is kOk,
/// kDeadlineExceeded, or kMalformedBody (semantic rejections that only the
/// engine can see, e.g. a top-k of zero is fine but a rule whose
/// antecedent support is zero still answers with confidence 0).
/// kStats/kReload/kPing are server-level opcodes the engine rejects with
/// kInternal — routing them here is a server bug.
Response answer_query(const Request& request, const LoadedBlob& blob,
                      const core::MiningControl& control,
                      QueryCounters& counters);

/// Support of `ranks` (strictly increasing) via the sum-bucket scan.
/// Returns false when the control tripped mid-scan (support is then a
/// partial sum and must not be served).
bool blob_support(const LoadedBlob& blob, std::span<const Rank> ranks,
                  const core::MiningControl& control, QueryCounters& counters,
                  Count& support);

}  // namespace plt::serve
