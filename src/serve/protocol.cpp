#include "serve/protocol.hpp"

#include <cstring>

namespace plt::serve {

namespace {

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
}

void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFF));
}

/// Bounds-checked little-endian reads over an untrusted payload. Each
/// returns false when the read would run past the end.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;

  bool u8(std::uint8_t& out) {
    if (pos + 1 > bytes.size()) return false;
    out = bytes[pos++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (pos + 2 > bytes.size()) return false;
    out = static_cast<std::uint16_t>(bytes[pos] |
                                     (std::uint16_t{bytes[pos + 1]} << 8));
    pos += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    if (pos + 4 > bytes.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i)
      out |= std::uint32_t{bytes[pos + static_cast<std::size_t>(i)]}
             << (8 * i);
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& out) {
    if (pos + 8 > bytes.size()) return false;
    out = 0;
    for (int i = 0; i < 8; ++i)
      out |= std::uint64_t{bytes[pos + static_cast<std::size_t>(i)]}
             << (8 * i);
    pos += 8;
    return true;
  }
  bool done() const { return pos == bytes.size(); }
};

/// `u16le count | count * u32le rank`, ranks strictly increasing, each >= 1.
bool read_itemset(Reader& reader, std::vector<Rank>& out) {
  std::uint16_t count = 0;
  if (!reader.u16(count)) return false;
  if (count > kMaxQueryItems) return false;
  out.clear();
  out.reserve(count);
  Rank prev = 0;
  for (std::uint16_t i = 0; i < count; ++i) {
    std::uint32_t rank = 0;
    if (!reader.u32(rank)) return false;
    if (rank <= prev) return false;  // enforces >= 1 and strict order
    out.push_back(rank);
    prev = rank;
  }
  return true;
}

void write_itemset(std::vector<std::uint8_t>& out,
                   const std::vector<Rank>& ranks) {
  put_u16le(out, static_cast<std::uint16_t>(ranks.size()));
  for (const Rank rank : ranks) put_u32le(out, rank);
}

/// Fills in the length prefix once the payload is complete.
std::vector<std::uint8_t> finish_frame(std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 4);
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

const char* to_string(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing: return "ping";
    case Opcode::kSupport: return "support";
    case Opcode::kMembership: return "membership";
    case Opcode::kTopK: return "top-k";
    case Opcode::kRule: return "rule";
    case Opcode::kStats: return "stats";
    case Opcode::kReload: return "reload";
  }
  return "unknown";
}

bool known_opcode(std::uint8_t raw) {
  return raw < kOpcodeCount;
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "OK";
    case Status::kBadMagic: return "BAD_MAGIC";
    case Status::kBadVersion: return "BAD_VERSION";
    case Status::kBadOpcode: return "BAD_OPCODE";
    case Status::kMalformedBody: return "MALFORMED_BODY";
    case Status::kFrameTooLarge: return "FRAME_TOO_LARGE";
    case Status::kUnknownBlob: return "UNKNOWN_BLOB";
    case Status::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kShuttingDown: return "SHUTTING_DOWN";
    case Status::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  std::vector<std::uint8_t> payload;
  put_u32le(payload, kRequestMagic);
  payload.push_back(kProtocolVersion);
  payload.push_back(static_cast<std::uint8_t>(request.opcode));
  put_u16le(payload, request.blob_id);
  put_u32le(payload, request.request_id);
  put_u32le(payload, request.deadline_ms);
  switch (request.opcode) {
    case Opcode::kSupport:
    case Opcode::kMembership:
      write_itemset(payload, request.ranks);
      break;
    case Opcode::kTopK:
      put_u32le(payload, request.k);
      break;
    case Opcode::kRule:
      write_itemset(payload, request.ranks);
      put_u32le(payload, request.consequent);
      break;
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kReload:
      break;
  }
  return finish_frame(std::move(payload));
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> payload;
  put_u32le(payload, kResponseMagic);
  payload.push_back(kProtocolVersion);
  payload.push_back(static_cast<std::uint8_t>(response.opcode));
  payload.push_back(static_cast<std::uint8_t>(response.status));
  payload.push_back(0);
  put_u32le(payload, response.request_id);
  if (response.status != Status::kOk) {
    put_u32le(payload, static_cast<std::uint32_t>(response.detail.size()));
    payload.insert(payload.end(), response.detail.begin(),
                   response.detail.end());
    return finish_frame(std::move(payload));
  }
  switch (response.opcode) {
    case Opcode::kSupport:
      put_u64le(payload, response.support);
      break;
    case Opcode::kMembership:
      payload.push_back(response.member ? 1 : 0);
      put_u64le(payload, response.support);
      break;
    case Opcode::kTopK:
      put_u32le(payload, static_cast<std::uint32_t>(response.top.size()));
      for (const TopEntry& entry : response.top) {
        put_u32le(payload, entry.rank);
        put_u64le(payload, entry.support);
      }
      break;
    case Opcode::kRule:
      put_u64le(payload, response.antecedent_support);
      put_u64le(payload, response.support);
      put_u64le(payload, response.confidence_ppm);
      break;
    case Opcode::kStats:
      put_u32le(payload, response.generation);
      put_u32le(payload, static_cast<std::uint32_t>(response.detail.size()));
      payload.insert(payload.end(), response.detail.begin(),
                     response.detail.end());
      break;
    case Opcode::kReload:
      put_u32le(payload, response.generation);
      break;
    case Opcode::kPing:
      break;
  }
  return finish_frame(std::move(payload));
}

FrameResult try_frame(std::span<const std::uint8_t> buffer,
                      std::uint32_t max_frame,
                      std::span<const std::uint8_t>& payload,
                      std::size_t& consumed) {
  if (buffer.size() < 4) return FrameResult::kNeedMore;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i)
    length |= std::uint32_t{buffer[static_cast<std::size_t>(i)]} << (8 * i);
  if (length > max_frame) return FrameResult::kTooLarge;
  if (buffer.size() < std::size_t{4} + length) return FrameResult::kNeedMore;
  payload = buffer.subspan(4, length);
  consumed = std::size_t{4} + length;
  return FrameResult::kFrame;
}

Status decode_request(std::span<const std::uint8_t> payload, Request& out) {
  Reader reader{payload};
  std::uint32_t magic = 0;
  if (!reader.u32(magic)) return Status::kBadMagic;
  if (magic != kRequestMagic) return Status::kBadMagic;
  std::uint8_t version = 0, opcode = 0;
  if (!reader.u8(version) || !reader.u8(opcode) ||
      !reader.u16(out.blob_id) || !reader.u32(out.request_id) ||
      !reader.u32(out.deadline_ms))
    return Status::kMalformedBody;
  if (version != kProtocolVersion) return Status::kBadVersion;
  if (!known_opcode(opcode)) return Status::kBadOpcode;
  out.opcode = static_cast<Opcode>(opcode);
  switch (out.opcode) {
    case Opcode::kSupport:
      if (!read_itemset(reader, out.ranks)) return Status::kMalformedBody;
      break;
    case Opcode::kMembership:
      if (!read_itemset(reader, out.ranks) || out.ranks.empty())
        return Status::kMalformedBody;
      break;
    case Opcode::kTopK:
      if (!reader.u32(out.k)) return Status::kMalformedBody;
      break;
    case Opcode::kRule: {
      if (!read_itemset(reader, out.ranks)) return Status::kMalformedBody;
      std::uint32_t consequent = 0;
      if (!reader.u32(consequent) || consequent == 0)
        return Status::kMalformedBody;
      // The consequent must not repeat an antecedent item.
      for (const Rank rank : out.ranks)
        if (rank == consequent) return Status::kMalformedBody;
      out.consequent = consequent;
      break;
    }
    case Opcode::kPing:
    case Opcode::kStats:
    case Opcode::kReload:
      break;
  }
  if (!reader.done()) return Status::kMalformedBody;  // trailing garbage
  return Status::kOk;
}

bool decode_response(std::span<const std::uint8_t> payload, Response& out) {
  Reader reader{payload};
  std::uint32_t magic = 0;
  std::uint8_t version = 0, opcode = 0, status = 0, pad = 0;
  if (!reader.u32(magic) || magic != kResponseMagic) return false;
  if (!reader.u8(version) || version != kProtocolVersion) return false;
  if (!reader.u8(opcode) || !known_opcode(opcode)) return false;
  if (!reader.u8(status) || !reader.u8(pad) || !reader.u32(out.request_id))
    return false;
  out.opcode = static_cast<Opcode>(opcode);
  if (status > static_cast<std::uint8_t>(Status::kInternal)) return false;
  out.status = static_cast<Status>(status);
  if (out.status != Status::kOk) {
    std::uint32_t detail_len = 0;
    if (!reader.u32(detail_len)) return false;
    if (reader.pos + detail_len > payload.size()) return false;
    out.detail.assign(
        reinterpret_cast<const char*>(payload.data() + reader.pos),
        detail_len);
    reader.pos += detail_len;
    return reader.done();
  }
  switch (out.opcode) {
    case Opcode::kSupport:
      if (!reader.u64(out.support)) return false;
      break;
    case Opcode::kMembership: {
      std::uint8_t member = 0;
      if (!reader.u8(member) || !reader.u64(out.support)) return false;
      out.member = member != 0;
      break;
    }
    case Opcode::kTopK: {
      std::uint32_t n = 0;
      if (!reader.u32(n)) return false;
      out.top.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        TopEntry entry;
        if (!reader.u32(entry.rank) || !reader.u64(entry.support))
          return false;
        out.top.push_back(entry);
      }
      break;
    }
    case Opcode::kRule:
      if (!reader.u64(out.antecedent_support) || !reader.u64(out.support) ||
          !reader.u64(out.confidence_ppm))
        return false;
      break;
    case Opcode::kStats: {
      std::uint32_t detail_len = 0;
      if (!reader.u32(out.generation) || !reader.u32(detail_len))
        return false;
      if (reader.pos + detail_len > payload.size()) return false;
      out.detail.assign(
          reinterpret_cast<const char*>(payload.data() + reader.pos),
          detail_len);
      reader.pos += detail_len;
      break;
    }
    case Opcode::kReload:
      if (!reader.u32(out.generation)) return false;
      break;
    case Opcode::kPing:
      break;
  }
  return reader.done();
}

}  // namespace plt::serve
