// plt-serve daemon core (DESIGN.md S27): a thread-per-core epoll server
// over mmap'd PLT2 blobs. No framework — one acceptor thread hands
// accepted connections round-robin to N worker loops; each worker owns its
// connections outright (epoll set, buffers, stats), so the only shared
// state on the request path is the BlobStore snapshot (one shared_ptr copy
// per tick), the global in-flight byte budget (one atomic), and the
// per-worker stats mutex the admin endpoint takes when merging.
//
// Batching: all requests decoded in one event-loop tick are executed
// grouped by (blob, top-rank bucket) before any response is flushed, so
// concurrent queries against the same partition run back-to-back over warm
// pages. Responses therefore leave in batch order, not arrival order —
// the protocol's request_id correlation makes that explicit.
//
// Admission control: per-request MiningControl deadlines (request header
// or server default) bound scan time, and a global in-flight memory budget
// bounds buffered request+response bytes — requests over budget get the
// typed OVERLOADED error instead of queueing without bound.
//
// Hot swap: reload() (admin opcode, or SIGHUP via the flag plt-serve
// registers) builds the next BlobSet off to the side and swaps one
// shared_ptr; in-flight queries drain on the old generation, which unmaps
// when the last snapshot holder drops it. A failed reload keeps serving
// the old generation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "serve/blob_store.hpp"
#include "serve/protocol.hpp"
#include "serve/socket_io.hpp"

namespace plt::serve {

struct ServerOptions {
  std::vector<std::string> blob_paths;
  std::uint16_t port = 0;  ///< 0 = ephemeral (port() reports the binding)
  unsigned threads = 1;    ///< worker event loops (thread-per-core)
  std::uint32_t default_deadline_ms = 0;  ///< 0 = no deadline
  /// Global in-flight byte budget (buffered requests + queued responses).
  /// 0 = unlimited.
  std::size_t memory_budget = std::size_t{64} << 20;
  std::uint32_t max_frame = kDefaultMaxFrame;
};

/// Point-in-time serving stats: per-request-class counts and latency
/// histograms plus connection/protocol tallies. Histograms merge
/// deterministically (per-bucket addition), so the snapshot is the sum
/// over workers no matter how work was distributed.
struct StatsSnapshot {
  struct PerClass {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;  ///< responses with status != kOk
    std::uint64_t deadline_exceeded = 0;
    obs::LatencyHistogram latency;
  };
  PerClass per_class[kOpcodeCount];
  std::uint64_t connections = 0;
  std::uint64_t disconnects = 0;       ///< peer closed mid-frame
  std::uint64_t protocol_errors = 0;   ///< bad magic/version/oversized/...
  std::uint64_t overloaded = 0;        ///< admissions refused over budget
  std::uint64_t batches = 0;           ///< executed request groups
  std::uint64_t batched_requests = 0;  ///< requests that shared a batch
  std::uint64_t reloads = 0;
  std::uint32_t generation = 0;

  /// The admin JSON document (also returned by the kStats opcode): one
  /// object with per-class counters + histograms and a plt-trace-v1 span
  /// tree built from the same numbers.
  std::string to_json() const;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads every blob (throws on a missing/corrupt one), binds the port
  /// (throws SocketError on EADDRINUSE), and starts the acceptor + worker
  /// threads.
  void start();

  /// Drains and joins every thread; idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  /// Atomic blob hot-swap; returns the new generation. Thread-safe; also
  /// reachable through the kReload admin opcode. Throws on load failure
  /// (old generation keeps serving).
  std::uint32_t reload();

  /// Polled by the acceptor loop (~10 Hz): when the pointed-to flag is
  /// nonzero it is cleared and a reload runs — the SIGHUP hook, kept
  /// signal-safe because the handler only sets the atomic.
  void watch_reload_flag(std::atomic<int>* flag) { reload_flag_ = flag; }

  StatsSnapshot stats() const;
  std::string stats_json() const { return stats().to_json(); }

 private:
  struct Worker;
  friend struct Worker;

  void acceptor_loop();
  void worker_loop(Worker& worker);

  ServerOptions options_;
  BlobStore store_;  // generation swap guarded inside (see blob_store.hpp)
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int>* reload_flag_ = nullptr;  ///< written by signal handler
  /// Global budget accounting: charged on enqueue, discharged on flush,
  /// by every worker thread — relaxed ordering, the budget is advisory.
  std::atomic<std::size_t> in_flight_bytes_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::uint16_t port_ = 0;  ///< written once in start(), before threads
  Fd listen_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::size_t next_worker_ = 0;  ///< acceptor-thread-only round-robin state
};

}  // namespace plt::serve
