// Blocking client for the plt-serve protocol — the test/bench/plt-query
// counterpart of the daemon's nonblocking path. One connection, one
// outstanding request at a time (call() writes a frame and reads frames
// until the response with the matching request_id arrives, since the server
// may interleave out-of-order responses from other requests batched in the
// same tick). send_raw() bypasses encoding entirely so the fuzz suite can
// put arbitrary bytes on the wire.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/socket_io.hpp"

namespace plt::serve {

class QueryClient {
 public:
  /// Connects to 127.0.0.1:`port`; throws SocketError on failure.
  explicit QueryClient(std::uint16_t port);

  /// Sends `request` and blocks for its response (matched by request_id).
  /// Returns nullopt when the server closes the connection instead of
  /// answering (shutdown, or a stream-level error already reported on an
  /// earlier frame). Throws SocketError/runtime_error on transport or
  /// malformed-response failures.
  std::optional<Response> call(const Request& request);

  // Typed conveniences; each uses the next auto-assigned request id.
  Count support(std::uint16_t blob_id, std::span<const Rank> ranks,
                std::uint32_t deadline_ms = 0);
  Response membership(std::uint16_t blob_id, std::span<const Rank> ranks);
  std::vector<TopEntry> top_k(std::uint16_t blob_id, std::uint32_t k);
  Response rule(std::uint16_t blob_id, std::span<const Rank> antecedent,
                Rank consequent);
  bool ping();
  /// The admin stats document (JSON) and serving generation.
  Response stats();
  /// Asks the daemon to hot-swap its blobs; returns the new generation.
  Response reload();

  /// Writes raw bytes as-is (no framing added) — the fuzz seam.
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Reads one complete frame and decodes it as a response. Returns nullopt
  /// on clean EOF at a frame boundary; throws on a malformed response or a
  /// mid-frame close.
  std::optional<Response> read_response();

  /// Half-closes the write side so the server sees EOF while the read side
  /// stays open for any queued responses.
  void shutdown_write();

  int fd() const { return fd_.get(); }

 private:
  Fd fd_;
  std::uint32_t next_id_ = 1;
};

}  // namespace plt::serve
