#include "serve/blob_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace plt::serve {

std::unique_ptr<const LoadedBlob> load_blob(const std::string& path) {
  PLT_SPAN("serve-load-blob");
  PLT_FAILPOINT("serve.load_blob");
  auto blob = std::make_unique<LoadedBlob>();
  blob->path = path;
  blob->map = compress::MappedBlob::open(path);
  blob->bytes = blob->map.bytes();
  // build_index re-parses the header and every partition frame, verifying
  // the PLT2 CRCs as it goes — a corrupt byte anywhere fails the load here,
  // before the blob can serve a single query.
  blob->index = compress::build_index(blob->bytes);
  blob->max_rank = blob->index.max_rank;
  blob->item_support.assign(blob->max_rank, 0);

  // One full pass to warm the per-rank support cache: the prefix sums of a
  // position vector are the ranks of its items (Lemma 4.1.1), so each
  // entry adds its freq to every prefix-sum rank. Also establishes
  // total_freq (the empty itemset's support).
  for (const compress::BlobIndex::PartitionRange& range :
       blob->index.partitions) {
    if (range.entries == 0) continue;
    compress::decode_partition(
        blob->bytes, blob->index, range.length,
        [&](std::span<const Pos> positions, Count freq) {
          ++blob->entries;
          blob->total_freq += freq;
          Rank rank = 0;
          for (const Pos position : positions) {
            rank += position;
            if (rank >= 1 && rank <= blob->max_rank)
              blob->item_support[rank - 1] += freq;
          }
        });
  }

  blob->ranks_by_support.reserve(blob->item_support.size());
  for (Rank rank = 1; rank <= blob->max_rank; ++rank) {
    const Count support = blob->item_support[rank - 1];
    if (support > 0) blob->ranks_by_support.push_back({rank, support});
  }
  std::stable_sort(blob->ranks_by_support.begin(),
                   blob->ranks_by_support.end(),
                   [](const TopEntry& a, const TopEntry& b) {
                     if (a.support != b.support) return a.support > b.support;
                     return a.rank < b.rank;
                   });
  return blob;
}

BlobStore::BlobStore(std::vector<std::string> paths)
    : paths_(std::move(paths)) {}

void BlobStore::load_initial() {
  auto set = std::make_shared<BlobSet>();
  set->generation = 1;
  for (const std::string& path : paths_) set->blobs.push_back(load_blob(path));
  MutexLock lock(mutex_);
  current_ = std::move(set);
  generation_ = 1;
}

std::shared_ptr<const BlobSet> BlobStore::snapshot() const {
  MutexLock lock(mutex_);
  return current_;
}

std::uint32_t BlobStore::reload() {
  // Build the whole next generation before taking the lock: a failure here
  // propagates to the caller and the current set keeps serving.
  auto set = std::make_shared<BlobSet>();
  for (const std::string& path : paths_) set->blobs.push_back(load_blob(path));
  MutexLock lock(mutex_);
  set->generation = ++generation_;
  current_ = std::move(set);
  return generation_;
}

}  // namespace plt::serve
