#include "serve/client.hpp"

#include <sys/socket.h>

#include <cstring>
#include <stdexcept>

namespace plt::serve {

QueryClient::QueryClient(std::uint16_t port) : fd_(connect_tcp(port)) {}

std::optional<Response> QueryClient::read_response() {
  std::uint8_t prefix[4];
  if (!read_exact(fd_.get(), prefix, sizeof(prefix))) return std::nullopt;
  std::uint32_t length = 0;
  std::memcpy(&length, prefix, sizeof(length));
  // Same cap the server enforces on request frames: a corrupt or hostile
  // length prefix must not drive an unbounded allocation.
  if (length > kDefaultMaxFrame)
    throw SocketError("response frame length exceeds protocol limit");
  std::vector<std::uint8_t> payload(length);
  if (length > 0 && !read_exact(fd_.get(), payload.data(), payload.size()))
    throw SocketError("connection closed mid-frame");
  Response response;
  if (!decode_response(payload, response))
    throw std::runtime_error("malformed response frame from server");
  return response;
}

std::optional<Response> QueryClient::call(const Request& request) {
  write_all(fd_.get(), encode_request(request));
  // The server interleaves responses from other requests in the same tick;
  // skip anything that is not ours (single-threaded callers never see any,
  // but the concurrency suite shares a helper).
  for (;;) {
    std::optional<Response> response = read_response();
    if (!response.has_value()) return std::nullopt;
    if (response->request_id == request.request_id) return response;
  }
}

namespace {

[[noreturn]] void throw_status(const Response& response) {
  throw std::runtime_error(std::string("server error: ") +
                           to_string(response.status) +
                           (response.detail.empty() ? ""
                                                    : " (" + response.detail +
                                                          ")"));
}

Response expect_ok(std::optional<Response> response) {
  if (!response.has_value())
    throw SocketError("server closed the connection before answering");
  if (response->status != Status::kOk) throw_status(*response);
  return *std::move(response);
}

}  // namespace

Count QueryClient::support(std::uint16_t blob_id, std::span<const Rank> ranks,
                           std::uint32_t deadline_ms) {
  Request request;
  request.opcode = Opcode::kSupport;
  request.blob_id = blob_id;
  request.request_id = next_id_++;
  request.deadline_ms = deadline_ms;
  request.ranks.assign(ranks.begin(), ranks.end());
  return expect_ok(call(request)).support;
}

Response QueryClient::membership(std::uint16_t blob_id,
                                 std::span<const Rank> ranks) {
  Request request;
  request.opcode = Opcode::kMembership;
  request.blob_id = blob_id;
  request.request_id = next_id_++;
  request.ranks.assign(ranks.begin(), ranks.end());
  return expect_ok(call(request));
}

std::vector<TopEntry> QueryClient::top_k(std::uint16_t blob_id,
                                         std::uint32_t k) {
  Request request;
  request.opcode = Opcode::kTopK;
  request.blob_id = blob_id;
  request.request_id = next_id_++;
  request.k = k;
  return expect_ok(call(request)).top;
}

Response QueryClient::rule(std::uint16_t blob_id,
                           std::span<const Rank> antecedent, Rank consequent) {
  Request request;
  request.opcode = Opcode::kRule;
  request.blob_id = blob_id;
  request.request_id = next_id_++;
  request.ranks.assign(antecedent.begin(), antecedent.end());
  request.consequent = consequent;
  return expect_ok(call(request));
}

bool QueryClient::ping() {
  Request request;
  request.opcode = Opcode::kPing;
  request.request_id = next_id_++;
  const std::optional<Response> response = call(request);
  return response.has_value() && response->status == Status::kOk;
}

Response QueryClient::stats() {
  Request request;
  request.opcode = Opcode::kStats;
  request.request_id = next_id_++;
  return expect_ok(call(request));
}

Response QueryClient::reload() {
  Request request;
  request.opcode = Opcode::kReload;
  request.request_id = next_id_++;
  return expect_ok(call(request));
}

void QueryClient::send_raw(std::span<const std::uint8_t> bytes) {
  write_all(fd_.get(), bytes);
}

void QueryClient::shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }

}  // namespace plt::serve
