#include "serve/server.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "core/exec_control.hpp"
#include "obs/trace.hpp"
#include "serve/query_engine.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"

namespace plt::serve {

namespace {

/// Sort/group key for per-tick batching: requests that will scan the same
/// sum buckets land adjacently. The top rank of the queried itemset is the
/// first bucket a support scan touches; membership touches exactly it.
std::uint64_t batch_key(const Request& request) {
  const Rank top = request.ranks.empty() ? 0 : request.ranks.back();
  return (std::uint64_t{request.blob_id} << 32) | top;
}

Response make_error(Opcode opcode, std::uint32_t request_id, Status status,
                    std::string detail) {
  Response response;
  response.opcode = opcode;
  response.request_id = request_id;
  response.status = status;
  response.detail = std::move(detail);
  return response;
}

void histogram_json(std::ostringstream& out,
                    const obs::LatencyHistogram& histogram) {
  out << "\"latency\":" << histogram.to_json()
      << ",\"p50_ns\":" << histogram.percentile(0.50)
      << ",\"p99_ns\":" << histogram.percentile(0.99)
      << ",\"p999_ns\":" << histogram.percentile(0.999);
}

}  // namespace

std::string StatsSnapshot::to_json() const {
  std::ostringstream out;
  std::uint64_t total_requests = 0, total_errors = 0, total_deadline = 0;
  out << "{\"daemon\":\"plt-serve\",\"generation\":" << generation
      << ",\"connections\":" << connections
      << ",\"disconnects\":" << disconnects
      << ",\"protocol_errors\":" << protocol_errors
      << ",\"overloaded\":" << overloaded << ",\"batches\":" << batches
      << ",\"batched_requests\":" << batched_requests
      << ",\"reloads\":" << reloads << ",\"classes\":{";
  bool first = true;
  for (std::size_t op = 0; op < kOpcodeCount; ++op) {
    const PerClass& c = per_class[op];
    total_requests += c.requests;
    total_errors += c.errors;
    total_deadline += c.deadline_exceeded;
    if (c.requests == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << to_string(static_cast<Opcode>(op)) << "\":{\"requests\":"
        << c.requests << ",\"errors\":" << c.errors
        << ",\"deadline_exceeded\":" << c.deadline_exceeded << ',';
    histogram_json(out, c.latency);
    out << '}';
  }
  out << "},\"trace\":";
  // The same tallies rendered as a plt-trace-v1 document (masked: no
  // durations), so trace tooling pointed at the admin endpoint reads the
  // serving side like any mining run. Counters are name-sorted, matching
  // aggregate()'s invariant.
  obs::TraceNode request_node;
  request_node.name = "serve-request";
  request_node.count = total_requests;
  request_node.counters = {
      {"serve.deadline-exceeded", total_deadline},
      {"serve.errors", total_errors},
      {"serve.requests", total_requests},
  };
  obs::TraceNode root;
  root.name = "trace";
  root.count = 1;
  root.children.push_back(std::move(request_node));
  obs::TraceExportOptions options;
  options.mask_durations = true;
  std::string trace = obs::to_json(root, options);
  while (!trace.empty() && trace.back() == '\n') trace.pop_back();
  out << trace << '}';
  return out.str();
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

namespace {

struct Connection {
  Fd fd;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;
  bool close_after_flush = false;
  bool want_write = false;
};

struct PendingRequest {
  int fd = -1;
  Request request;
};

/// Flushes as much queued output as the socket accepts. Returns false when
/// the connection must be closed (peer gone, or close_after_flush with the
/// buffer drained). Discharges written bytes from the in-flight budget.
bool flush_connection(Connection& conn, std::atomic<std::size_t>& in_flight) {
  while (conn.out_pos < conn.out.size()) {
    const std::ptrdiff_t n =
        write_some(conn.fd.get(), conn.out.data() + conn.out_pos,
                   conn.out.size() - conn.out_pos);
    if (n < 0) {  // send buffer full; wait for EPOLLOUT
      conn.want_write = true;
      return true;
    }
    if (n == 0) return false;  // peer vanished
    conn.out_pos += static_cast<std::size_t>(n);
    in_flight.fetch_sub(static_cast<std::size_t>(n),
                        std::memory_order_relaxed);
  }
  conn.out.clear();
  conn.out_pos = 0;
  conn.want_write = false;
  return !conn.close_after_flush;
}

}  // namespace

struct Server::Worker {
  Server* server = nullptr;
  Fd epoll;
  Fd wake;
  std::thread thread;

  // Crossed by the acceptor thread: freshly accepted fds parked until the
  // worker adopts them at the top of its tick.
  Mutex inbox_mutex;
  std::vector<int> inbox PLT_GUARDED_BY(inbox_mutex);

  // Crossed by any worker answering a kStats request (Server::stats()
  // walks every worker's tallies).
  mutable Mutex stats_mutex;
  StatsSnapshot::PerClass per_class[kOpcodeCount] PLT_GUARDED_BY(stats_mutex);
  std::uint64_t connections PLT_GUARDED_BY(stats_mutex) = 0;
  std::uint64_t disconnects PLT_GUARDED_BY(stats_mutex) = 0;
  std::uint64_t protocol_errors PLT_GUARDED_BY(stats_mutex) = 0;
  std::uint64_t overloaded PLT_GUARDED_BY(stats_mutex) = 0;
  std::uint64_t batches PLT_GUARDED_BY(stats_mutex) = 0;
  std::uint64_t batched_requests PLT_GUARDED_BY(stats_mutex) = 0;

  // Worker-thread-only: never touched off the owning worker's loop.
  std::unordered_map<int, Connection> conns;
  std::vector<PendingRequest> pending;
};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(ServerOptions options)
    : options_(std::move(options)), store_(options_.blob_paths) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  store_.load_initial();
  listen_ = listen_tcp(options_.port, port_);
  set_nonblocking(listen_.get());
  stopping_.store(false, std::memory_order_release);

  const unsigned threads = std::max(1u, options_.threads);
  for (unsigned i = 0; i < threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->server = this;
    worker->epoll = Fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!worker->epoll.valid()) throw SocketError("epoll_create1 failed");
    worker->wake = Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!worker->wake.valid()) throw SocketError("eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake.get();
    if (::epoll_ctl(worker->epoll.get(), EPOLL_CTL_ADD, worker->wake.get(),
                    &ev) != 0)
      throw SocketError("epoll_ctl(wake) failed");
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  acceptor_ = std::thread([this] { acceptor_loop(); });
  running_.store(true, std::memory_order_release);
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire) && !acceptor_.joinable())
    return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker->wake.valid()) {
      const std::uint64_t one = 1;
      if (::write(worker->wake.get(), &one, sizeof(one)) < 0)
        log_warn() << "plt-serve: shutdown wake write failed: "
                   << std::strerror(errno);
    }
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
  listen_.reset();
  running_.store(false, std::memory_order_release);
}

std::uint32_t Server::reload() {
  const std::uint32_t generation = store_.reload();
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return generation;
}

StatsSnapshot Server::stats() const {
  StatsSnapshot snapshot;
  for (const auto& worker : workers_) {
    MutexLock lock(worker->stats_mutex);
    for (std::size_t op = 0; op < kOpcodeCount; ++op) {
      const StatsSnapshot::PerClass& from = worker->per_class[op];
      StatsSnapshot::PerClass& to = snapshot.per_class[op];
      to.requests += from.requests;
      to.errors += from.errors;
      to.deadline_exceeded += from.deadline_exceeded;
      to.latency.merge(from.latency);
    }
    snapshot.connections += worker->connections;
    snapshot.disconnects += worker->disconnects;
    snapshot.protocol_errors += worker->protocol_errors;
    snapshot.overloaded += worker->overloaded;
    snapshot.batches += worker->batches;
    snapshot.batched_requests += worker->batched_requests;
  }
  snapshot.reloads = reloads_.load(std::memory_order_relaxed);
  if (const std::shared_ptr<const BlobSet> set = store_.snapshot())
    snapshot.generation = set->generation;
  return snapshot;
}

void Server::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    if (reload_flag_ != nullptr &&
        reload_flag_->exchange(0, std::memory_order_acq_rel) != 0) {
      try {
        const std::uint32_t generation = reload();
        log_info() << "plt-serve: reloaded blobs, generation " << generation;
      } catch (const std::exception& error) {
        log_warn() << "plt-serve: reload failed, keeping current generation: "
                   << error.what();
      }
    }
    pollfd pfd{};
    pfd.fd = listen_.get();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    for (;;) {
      const int client = ::accept4(listen_.get(), nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (client < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
          log_warn() << "plt-serve: accept failed: " << std::strerror(errno);
        break;
      }
      Worker& worker = *workers_[next_worker_];
      next_worker_ = (next_worker_ + 1) % workers_.size();
      {
        MutexLock lock(worker.inbox_mutex);
        worker.inbox.push_back(client);
      }
      const std::uint64_t one = 1;
      // EAGAIN means the counter is already non-zero, so the worker is
      // waking anyway; anything else is worth a diagnostic.
      if (::write(worker.wake.get(), &one, sizeof(one)) < 0 &&
          errno != EAGAIN)
        log_warn() << "plt-serve: wake write failed: " << std::strerror(errno);
    }
  }
}

void Server::worker_loop(Worker& worker) {
  std::vector<int> dead;
  epoll_event events[64];

  auto enqueue = [&](Connection& conn, const Response& response) {
    const std::vector<std::uint8_t> frame = encode_response(response);
    in_flight_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
    conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  };

  auto update_epoll = [&](int fd, Connection& conn) {
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(worker.epoll.get(), EPOLL_CTL_MOD, fd, &ev) != 0)
      log_warn() << "plt-serve: epoll_ctl(MOD) failed: "
                 << std::strerror(errno);
  };

  auto close_connection = [&](int fd) {
    auto it = worker.conns.find(fd);
    if (it == worker.conns.end()) return;
    // Un-charge whatever output never made it out.
    const std::size_t unsent = it->second.out.size() - it->second.out_pos;
    if (unsent > 0)
      in_flight_bytes_.fetch_sub(unsent, std::memory_order_relaxed);
    if (::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, fd, nullptr) != 0 &&
        errno != ENOENT)
      log_warn() << "plt-serve: epoll_ctl(DEL) failed: "
                 << std::strerror(errno);
    worker.conns.erase(it);
  };

  // Answers one validated request (admin or query) and records per-class
  // stats. Admission control and the per-request deadline both live here:
  // every rejection is a typed response, never a silent drop.
  auto execute = [&](Connection& conn, const Request& request,
                     const BlobSet& set) {
    PLT_SPAN("serve-request");
    PLT_TRACE_COUNT("serve.requests", 1);
    const auto started = std::chrono::steady_clock::now();
    Response response;

    if (stopping_.load(std::memory_order_acquire)) {
      response = make_error(request.opcode, request.request_id,
                            Status::kShuttingDown, "server is draining");
    } else if (request.opcode == Opcode::kPing) {
      response.opcode = Opcode::kPing;
      response.request_id = request.request_id;
    } else if (request.opcode == Opcode::kStats) {
      response.opcode = Opcode::kStats;
      response.request_id = request.request_id;
      response.generation = set.generation;
      response.detail = stats().to_json();
    } else if (request.opcode == Opcode::kReload) {
      response.opcode = Opcode::kReload;
      response.request_id = request.request_id;
      try {
        response.generation = reload();
      } catch (const std::exception& error) {
        response = make_error(Opcode::kReload, request.request_id,
                              Status::kInternal,
                              std::string("reload failed: ") + error.what());
      }
    } else if (const LoadedBlob* blob = set.blob(request.blob_id);
               blob == nullptr) {
      response = make_error(request.opcode, request.request_id,
                            Status::kUnknownBlob, "blob_id not loaded");
    } else if (options_.memory_budget != 0 &&
               in_flight_bytes_.load(std::memory_order_relaxed) >
                   options_.memory_budget) {
      response = make_error(request.opcode, request.request_id,
                            Status::kOverloaded,
                            "in-flight memory budget exhausted");
      MutexLock lock(worker.stats_mutex);
      ++worker.overloaded;
    } else {
      const std::uint32_t deadline_ms = request.deadline_ms != 0
                                            ? request.deadline_ms
                                            : options_.default_deadline_ms;
      const core::MiningControl control =
          deadline_ms != 0
              ? core::MiningControl::with_deadline(
                    std::chrono::milliseconds(deadline_ms))
              : core::MiningControl();
      QueryCounters counters;
      response = answer_query(request, *blob, control, counters);
      if (counters.buckets_scanned > 0)
        PLT_TRACE_COUNT("serve.buckets-scanned", counters.buckets_scanned);
    }

    const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    if (response.status != Status::kOk) PLT_TRACE_COUNT("serve.errors", 1);
    if (response.status == Status::kDeadlineExceeded)
      PLT_TRACE_COUNT("serve.deadline-exceeded", 1);
    {
      MutexLock lock(worker.stats_mutex);
      StatsSnapshot::PerClass& c =
          worker.per_class[static_cast<std::size_t>(request.opcode)];
      ++c.requests;
      if (response.status != Status::kOk) ++c.errors;
      if (response.status == Status::kDeadlineExceeded) ++c.deadline_exceeded;
      c.latency.record(elapsed_ns);
    }
    enqueue(conn, response);
  };

  while (true) {
    const int ready = ::epoll_wait(worker.epoll.get(), events, 64, 100);
    if (stopping_.load(std::memory_order_acquire)) break;

    // Adopt newly accepted connections.
    {
      std::vector<int> adopted;
      {
        MutexLock lock(worker.inbox_mutex);
        adopted.swap(worker.inbox);
      }
      for (const int fd : adopted) {
        Connection conn;
        conn.fd = Fd(fd);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(worker.epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0)
          continue;  // conn.fd closes it on scope exit
        worker.conns.emplace(fd, std::move(conn));
        MutexLock lock(worker.stats_mutex);
        ++worker.connections;
      }
    }

    dead.clear();
    worker.pending.clear();

    for (int i = 0; i < ready; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == worker.wake.get()) {
        std::uint64_t drain = 0;
        if (::read(worker.wake.get(), &drain, sizeof(drain)) < 0 &&
            errno != EAGAIN)
          log_warn() << "plt-serve: wake drain failed: "
                     << std::strerror(errno);
        continue;
      }
      auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;
      Connection& conn = it->second;

      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        dead.push_back(fd);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) {
        if (!flush_connection(conn, in_flight_bytes_)) {
          dead.push_back(fd);
          continue;
        }
        update_epoll(fd, conn);
      }
      if ((mask & EPOLLIN) == 0) continue;

      // Drain the socket into the connection buffer.
      bool peer_closed = false;
      std::uint8_t buffer[16384];
      for (;;) {
        const std::ptrdiff_t n = read_some(fd, buffer, sizeof(buffer));
        if (n < 0) break;  // would block
        if (n == 0) {
          peer_closed = true;
          break;
        }
        conn.in.insert(conn.in.end(), buffer,
                       buffer + static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof(buffer)) break;
      }

      // Parse every complete frame.
      std::size_t parsed = 0;
      bool fatal = false;
      while (!fatal) {
        std::span<const std::uint8_t> payload;
        std::size_t consumed = 0;
        const FrameResult result = try_frame(
            std::span<const std::uint8_t>(conn.in).subspan(parsed),
            options_.max_frame, payload, consumed);
        if (result == FrameResult::kNeedMore) break;
        if (result == FrameResult::kTooLarge) {
          enqueue(conn, make_error(Opcode::kPing, 0, Status::kFrameTooLarge,
                                   "declared frame length exceeds limit"));
          conn.close_after_flush = true;
          fatal = true;
          MutexLock lock(worker.stats_mutex);
          ++worker.protocol_errors;
          break;
        }
        Request request;
        const Status status = decode_request(payload, request);
        parsed += consumed;
        if (status == Status::kOk) {
          worker.pending.push_back({fd, std::move(request)});
          continue;
        }
        enqueue(conn, make_error(request.opcode, request.request_id, status,
                                 std::string("request rejected: ") +
                                     to_string(status)));
        {
          MutexLock lock(worker.stats_mutex);
          ++worker.protocol_errors;
        }
        if (status == Status::kBadMagic || status == Status::kBadVersion) {
          // Stream integrity unknown; stop parsing and drop the peer once
          // the diagnostic is flushed.
          conn.close_after_flush = true;
          fatal = true;
        }
      }
      if (parsed > 0)
        conn.in.erase(conn.in.begin(),
                      conn.in.begin() + static_cast<std::ptrdiff_t>(parsed));
      if (fatal) conn.in.clear();

      if (peer_closed) {
        if (!conn.in.empty()) {
          // Mid-request disconnect: a partial frame was abandoned.
          MutexLock lock(worker.stats_mutex);
          ++worker.disconnects;
        }
        dead.push_back(fd);
      }
    }

    // ---- batched execution: group this tick's requests by partition ----
    if (!worker.pending.empty()) {
      std::stable_sort(worker.pending.begin(), worker.pending.end(),
                       [](const PendingRequest& a, const PendingRequest& b) {
                         return batch_key(a.request) < batch_key(b.request);
                       });
      const std::shared_ptr<const BlobSet> snapshot = store_.snapshot();
      std::uint64_t groups = 0, grouped_requests = 0;
      std::uint64_t previous_key = ~std::uint64_t{0};
      for (const PendingRequest& item : worker.pending) {
        auto it = worker.conns.find(item.fd);
        if (it == worker.conns.end()) continue;  // died earlier this tick
        const std::uint64_t key = batch_key(item.request);
        if (key != previous_key) {
          ++groups;
          previous_key = key;
        } else {
          ++grouped_requests;
        }
        execute(it->second, item.request, *snapshot);
      }
      MutexLock lock(worker.stats_mutex);
      worker.batches += groups;
      worker.batched_requests += grouped_requests;
    }

    // Flush everything with queued output.
    for (auto& [fd, conn] : worker.conns) {
      if (conn.out_pos >= conn.out.size() && !conn.close_after_flush) continue;
      if (!flush_connection(conn, in_flight_bytes_)) {
        dead.push_back(fd);
        continue;
      }
      update_epoll(fd, conn);
    }

    for (const int fd : dead) close_connection(fd);
  }

  // Shutdown: drop every connection (pending output is abandoned; clients
  // treat the close as SHUTTING_DOWN).
  std::vector<int> open;
  open.reserve(worker.conns.size());
  for (const auto& [fd, conn] : worker.conns) open.push_back(fd);
  for (const int fd : open) close_connection(fd);
}

}  // namespace plt::serve
