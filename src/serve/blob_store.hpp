// Blob loading and hot swap for plt-serve. A LoadedBlob is one mmap'd PLT2
// container plus everything the query engine needs to answer without
// decoding the whole structure: the CRC-verified BlobIndex (sum-bucket
// random access), the total transaction mass, and a per-rank support cache
// (one full scan at load time) that makes top-k queries O(k).
//
// BlobStore owns the ordered list of blob paths (blob_id = position) and
// the current immutable BlobSet generation. Reload builds the entire next
// generation off to the side and swaps one shared_ptr under a mutex:
// in-flight requests keep the snapshot they started with, so a swap drains
// naturally — the old mapping unmaps when the last request referencing it
// completes. A reload that fails (missing file, CRC mismatch) leaves the
// current generation serving untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "compress/index.hpp"
#include "compress/mmap_blob.hpp"
#include "serve/protocol.hpp"
#include "util/thread_annotations.hpp"

namespace plt::serve {

struct LoadedBlob {
  std::string path;
  compress::MappedBlob map;
  std::span<const std::uint8_t> bytes;  ///< map.bytes(), for readability
  compress::BlobIndex index;
  Rank max_rank = 0;
  Count total_freq = 0;  ///< Σ freq over all entries = transaction count
  std::uint64_t entries = 0;
  /// support[rank-1]: Σ freq over entries whose vector contains `rank`.
  std::vector<Count> item_support;
  /// Every rank with support > 0, sorted by support desc then rank asc —
  /// the top-k answer is a prefix of this.
  std::vector<TopEntry> ranks_by_support;
};

/// One immutable generation of loaded blobs; shared by snapshot.
struct BlobSet {
  std::uint32_t generation = 0;
  std::vector<std::unique_ptr<const LoadedBlob>> blobs;

  const LoadedBlob* blob(std::uint16_t id) const {
    return id < blobs.size() ? blobs[id].get() : nullptr;
  }
};

/// Maps, CRC-checks and indexes one blob file. Throws std::runtime_error on
/// any validation failure (the caller decides whether that is fatal).
std::unique_ptr<const LoadedBlob> load_blob(const std::string& path);

class BlobStore {
 public:
  explicit BlobStore(std::vector<std::string> paths);

  /// Loads generation 1. Throws on the first bad blob.
  void load_initial();

  /// The current generation; never null after load_initial().
  std::shared_ptr<const BlobSet> snapshot() const PLT_EXCLUDES(mutex_);

  /// Builds the next generation from the same paths and swaps it in.
  /// Returns the new generation number; throws (keeping the old set
  /// serving) when any blob fails to load.
  std::uint32_t reload() PLT_EXCLUDES(mutex_);

  const std::vector<std::string>& paths() const { return paths_; }

 private:
  std::vector<std::string> paths_;
  mutable Mutex mutex_;
  std::shared_ptr<const BlobSet> current_ PLT_GUARDED_BY(mutex_);
  std::uint32_t generation_ PLT_GUARDED_BY(mutex_) = 0;
};

}  // namespace plt::serve
