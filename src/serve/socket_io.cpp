#include "serve/socket_io.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.hpp"

namespace plt::serve {

namespace {

[[noreturn]] void fail(const char* what) {
  throw SocketError(std::string(what) + ": " + std::strerror(errno));
}

/// Failpoint seam: when `name` is armed, the injected fault is absorbed and
/// the caller's attempt is truncated to a single byte (a deterministic
/// "short" operation, not an error).
std::size_t maybe_shorten(const char* name, std::size_t length) {
#if PLT_FAILPOINTS_ENABLED
  try {
    PLT_FAILPOINT(name);
  } catch (const InjectedFault&) {
    return length > 1 ? 1 : length;
  }
#else
  (void)name;
#endif
  return length;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::ptrdiff_t read_some(int fd, std::uint8_t* buffer, std::size_t length) {
  length = maybe_shorten("serve.socket.read", length);
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, length, 0);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == ECONNRESET) return 0;  // vanished peer == EOF
    fail("recv");
  }
}

std::ptrdiff_t write_some(int fd, const std::uint8_t* buffer,
                          std::size_t length) {
  length = maybe_shorten("serve.socket.write", length);
  for (;;) {
    const ssize_t n = ::send(fd, buffer, length, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EPIPE || errno == ECONNRESET) return 0;
    fail("send");
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    fail("fcntl(O_NONBLOCK)");
}

Fd listen_tcp(std::uint16_t port, std::uint16_t& bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail("socket");
  const int one = 1;
  // SO_REUSEADDR only skips TIME_WAIT; a live listener on the same port
  // still fails bind() with EADDRINUSE, which is the contract the
  // port-in-use CLI check pins.
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0)
    fail("setsockopt(SO_REUSEADDR)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    fail("bind");
  if (::listen(fd.get(), 128) != 0) fail("listen");
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) !=
      0)
    fail("getsockname");
  bound_port = ntohs(actual.sin_port);
  return fd;
}

Fd connect_tcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      break;
    if (errno == EINTR) continue;
    fail("connect");
  }
  const int one = 1;
  // Best-effort latency knob: a kernel that refuses TCP_NODELAY still
  // serves correctly, just slower. plt-lint: allow(syscall-check)
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const std::ptrdiff_t n =
        write_some(fd, bytes.data() + off, bytes.size() - off);
    if (n == 0 && bytes.size() - off > 0) {
      // Blocking socket: 0 only means the peer is gone.
      throw SocketError("write_all: connection closed by peer");
    }
    if (n > 0) off += static_cast<std::size_t>(n);
    // n < 0 cannot happen on a blocking socket, but looping is harmless.
  }
}

bool read_exact(int fd, std::uint8_t* buffer, std::size_t length) {
  std::size_t off = 0;
  while (off < length) {
    const std::ptrdiff_t n = read_some(fd, buffer + off, length - off);
    if (n == 0) {
      if (off == 0) return false;
      throw SocketError("read_exact: EOF mid-frame");
    }
    if (n > 0) off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace plt::serve
