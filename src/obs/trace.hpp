// Observability layer (S23): low-overhead structured tracing and phase
// metrics for every mining path. The design splits recording from
// reporting:
//
//   * Recording is per-thread and lock-free: each thread that opens a span
//     owns a ThreadTrace — an aggregation tree of (name, count, ns,
//     counters) nodes plus a fixed-size ring buffer of the most recent
//     enter/exit events (for post-mortem context; the ring never feeds the
//     deterministic outputs). Span enter/exit touches only thread-local
//     state, so tracing a work-stealing mine needs no synchronization on
//     the hot path.
//   * Reporting merges the per-thread trees into one deterministic
//     TraceNode tree: children and counters sorted by name, counts and
//     durations summed. Because every unit of work is traced exactly once
//     no matter which thread ran it, the merged tree is byte-identical
//     across thread counts once durations are masked — the golden-trace
//     tests pin exactly that.
//
// Cost contract:
//   * compile-time off (-DPLT_OBS=OFF): every macro/inline expands to
//     nothing; the library carries no tracing code at all.
//   * runtime off (compiled in, no TraceSession installed): one relaxed
//     atomic load per span/counter site — measured <3% on
//     bench_projection_pool (EXPERIMENTS.md E19).
//   * runtime on: a steady_clock read per span boundary plus a short
//     linear child/counter scan; enabled-mode overhead is also recorded in
//     E19.
//
// Determinism rules (golden traces rely on these — see DESIGN.md S23):
//   1. Span and counter names are stable literals; no ids, addresses,
//      sizes or thread counts may leak into a name.
//   2. Only thread-count-invariant quantities are recorded (e.g. the
//      work-stealing miner's steal count stays in ProjectionStats, not
//      here).
//   3. Masked export (TraceExportOptions::mask_durations) omits every
//      nanosecond field, the backend tag and the event ring, leaving
//      names, nesting and counts only.
//
// Activation: a TraceSession installs a process-wide collector (sessions
// nest; the innermost wins). The facade mine() paths open their own
// session per call when runtime tracing is enabled (PLT_TRACE env or
// obs::set_enabled) and no outer session exists, and export the tree via
// MineResult::trace. plt-mine --trace=FILE and every bench binary's
// --trace flag install one session around the whole run instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#ifndef PLT_OBS_ENABLED
#define PLT_OBS_ENABLED 1
#endif

namespace plt::obs {

/// One node of the merged, deterministic span tree. Children and counters
/// are sorted by name; counts/durations are summed over every thread that
/// recorded the same span path.
struct TraceNode {
  std::string name;
  std::uint64_t count = 0;     ///< times a span with this path was opened
  std::uint64_t total_ns = 0;  ///< wall time summed over those spans
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<TraceNode> children;

  /// Direct child by name, or nullptr.
  const TraceNode* child(std::string_view child_name) const;
  /// Descendant by path from this node, or nullptr ("a/b/c").
  const TraceNode* descendant(std::string_view path) const;
  /// Counter value on this node (0 when absent).
  std::uint64_t counter(std::string_view counter_name) const;
  /// Recursive sum of one counter over this node and all descendants.
  std::uint64_t counter_total(std::string_view counter_name) const;
  /// Total spans in this subtree (sum of count over every node).
  std::uint64_t span_total() const;
};

/// Aggregate well-formedness report, for tests and trace consumers: a
/// healthy trace has no unbalanced exits, no spans still open at
/// aggregation time, and (usually) no dropped ring events.
struct TraceHealth {
  std::uint64_t threads = 0;           ///< ThreadTraces registered
  std::uint64_t unbalanced_exits = 0;  ///< span exits without an enter
  std::uint64_t open_spans = 0;        ///< spans still open when aggregated
  std::uint64_t dropped_events = 0;    ///< ring-buffer overwrites
};

/// One entry of a per-thread event ring (most recent events only).
struct TraceEvent {
  const char* name;
  bool enter;        ///< true = span enter, false = span exit
  std::uint64_t ns;  ///< steady-clock timestamp
};

class ThreadTrace;        // opaque per-thread recorder (trace.cpp)
class TraceCollectorImpl; // opaque collector state (trace.cpp)

namespace detail {
// The installed collector; null when tracing is runtime-off. Exposed so
// the disabled fast path is a single inline relaxed load.
extern std::atomic<TraceCollectorImpl*> g_collector;
ThreadTrace* register_current_thread();  // slow path, locks the collector
std::uint64_t now_ns();
void span_enter(ThreadTrace* t, const char* name);
void span_exit(ThreadTrace* t, std::uint64_t elapsed_ns);
void add_counter(ThreadTrace* t, const char* name, std::uint64_t delta);
}  // namespace detail

/// The calling thread's recorder under the installed collector, or null
/// when tracing is off. Fast path: one relaxed atomic load.
inline ThreadTrace* current_thread_trace() {
#if PLT_OBS_ENABLED
  if (detail::g_collector.load(std::memory_order_relaxed) == nullptr)
    return nullptr;
  return detail::register_current_thread();
#else
  return nullptr;
#endif
}

/// True when a collector is installed (some TraceSession is live).
bool session_active();

/// Runtime master toggle consulted by the mine() facades: true when
/// set_enabled(true) was called or the PLT_TRACE environment variable is
/// set to anything but "" / "0" / "off" (read once, at first query).
bool enabled();
void set_enabled(bool on);

/// RAII phase span. Records nothing (one relaxed load) when tracing is
/// off. `name` must outlive the session — use string literals or other
/// static storage (algorithm_name() etc.).
class Span {
 public:
  explicit Span(const char* name) {
#if PLT_OBS_ENABLED
    t_ = current_thread_trace();
    if (t_ != nullptr) {
      detail::span_enter(t_, name);
      start_ = detail::now_ns();
    }
#else
    (void)name;
#endif
  }
  ~Span() {
#if PLT_OBS_ENABLED
    if (t_ != nullptr) detail::span_exit(t_, detail::now_ns() - start_);
#endif
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if PLT_OBS_ENABLED
  ThreadTrace* t_ = nullptr;
  std::uint64_t start_ = 0;
#endif
};

/// Adds `delta` to the named counter on the calling thread's innermost
/// open span (or its root when no span is open). Monotone by construction:
/// deltas are unsigned and never reset within a session.
inline void count(const char* name, std::uint64_t delta = 1) {
#if PLT_OBS_ENABLED
  if (ThreadTrace* t = current_thread_trace())
    detail::add_counter(t, name, delta);
#else
  (void)name;
  (void)delta;
#endif
}

/// Kernel-dispatch accounting: one call + `bytes` bytes through the named
/// kernel entry point ("kernel.peel_prefixes", ...). Counter names carry
/// no backend tag so traces stay byte-identical across scalar/SIMD
/// backends; the active backend is reported once, as export metadata.
inline void count_kernel(const char* calls_name, const char* bytes_name,
                         std::uint64_t bytes) {
#if PLT_OBS_ENABLED
  if (ThreadTrace* t = current_thread_trace()) {
    detail::add_counter(t, calls_name, 1);
    detail::add_counter(t, bytes_name, bytes);
  }
#else
  (void)calls_name;
  (void)bytes_name;
  (void)bytes;
#endif
}

/// Owns the per-thread recorders of one tracing session and merges them.
/// aggregate() is safe once the traced work has quiesced (worker threads
/// joined); the mine() paths only aggregate after their joins.
class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Makes this the process-wide collector / restores the previous one.
  /// Install/uninstall strictly nest (LIFO), always from the same thread.
  void install();
  void uninstall();

  /// Deterministic merged tree: root "trace", children sorted by name.
  TraceNode aggregate() const;
  TraceHealth health() const;
  /// Recent enter/exit events, one vector per registered thread (ring
  /// contents, oldest first). Diagnostic only — never deterministic.
  std::vector<std::vector<TraceEvent>> thread_events() const;

 private:
  std::unique_ptr<TraceCollectorImpl> impl_;
  TraceCollectorImpl* prev_ = nullptr;  ///< non-owning: the nested collector
  bool installed_ = false;
};

/// Scoped session: constructs + installs a collector; finish() (or the
/// destructor) uninstalls it. finish() returns the aggregated tree and is
/// idempotent (later calls return the same tree).
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  std::shared_ptr<const TraceNode> finish();
  const TraceCollector& collector() const { return collector_; }
  TraceCollector& collector() { return collector_; }

 private:
  TraceCollector collector_;
  std::shared_ptr<const TraceNode> tree_;
  bool finished_ = false;
};

/// Facade helper: opens a per-call session only when runtime tracing is
/// enabled and no outer session exists — a CLI/bench session spanning many
/// mine() calls takes precedence (finish() then returns null and the outer
/// owner exports the combined trace instead).
class AutoSession {
 public:
  AutoSession() {
    if (enabled() && !session_active()) session_.emplace();
  }
  /// The aggregated tree when this facade call owned the session, else null.
  std::shared_ptr<const TraceNode> finish() {
    return session_ ? session_->finish() : nullptr;
  }

 private:
  std::optional<TraceSession> session_;
};

// ---- export ----

struct TraceExportOptions {
  /// Golden mode: omit every nanosecond field, the backend tag and any
  /// other non-deterministic metadata; emit names, nesting, counts and
  /// counters only.
  bool mask_durations = false;
  /// Annotates the export with the active kernel backend (ignored when
  /// masked). Filled by callers from kernels::active().name.
  std::string backend;
};

/// Canonical JSON rendering of a span tree: stable field order, children
/// and counters pre-sorted by aggregate(), newline-terminated — masked
/// output is byte-stable and exactly comparable to a committed golden.
std::string to_json(const TraceNode& root, const TraceExportOptions& options = {});

/// Flamegraph-ready folded stacks ("trace;mine;build 1234"), one line per
/// node, value = self time in nanoseconds (span count when masked).
std::string to_folded(const TraceNode& root, bool mask_durations = false);

}  // namespace plt::obs

#if PLT_OBS_ENABLED
#define PLT_OBS_CONCAT_(a, b) a##b
#define PLT_OBS_CONCAT(a, b) PLT_OBS_CONCAT_(a, b)
/// Opens an RAII phase span for the rest of the enclosing scope.
#define PLT_SPAN(name) \
  ::plt::obs::Span PLT_OBS_CONCAT(plt_obs_span_, __LINE__)(name)
/// Adds to a named counter on the innermost open span of this thread.
#define PLT_TRACE_COUNT(name, delta) ::plt::obs::count((name), (delta))
#else
#define PLT_SPAN(name) \
  do {                 \
  } while (0)
#define PLT_TRACE_COUNT(name, delta) \
  do {                               \
  } while (0)
#endif
