// Central registry of every span and counter name the tracing layer may
// emit (S23 determinism rule #1: names are stable literals; S24 makes the
// rule machine-checked). tools/plt_lint's span-registry rule parses this
// file and rejects any PLT_SPAN / PLT_TRACE_COUNT / obs::count_kernel site
// whose name literal is missing here, so adding a span means adding one
// line below — which is exactly the review point where golden traces get
// updated.
//
// Keep each array sorted; is_registered_span_name is used by tests to
// assert exported traces only contain registered names.
#pragma once

#include <algorithm>
#include <string_view>

namespace plt::obs::names {

/// Phase spans (PLT_SPAN sites).
inline constexpr std::string_view kSpans[] = {
    "build-partitions",
    "build-plt",
    "build-ranked-view",
    "checkpoint",
    "codec-decode",
    "codec-encode",
    "emit",
    "expand",
    "merge",
    "mine",
    "mine-parallel",
    "mine-rank",
    "ooc-mine",
    "ooc-resume",
    "ooc-warm",
    "plan",
    "projection",
    "rank-loop",
    "serve-load-blob",
    "serve-query",
    "serve-request",
    "shard-launch",
    "shard-merge",
    "shard-mine",
    "shard-split",
    "shard-wait",
};

/// Monotonic counters (PLT_TRACE_COUNT and obs::count_kernel sites). The
/// status.* family is emitted through status_counter_name(), which maps
/// every MineStatus onto one of these literals.
inline constexpr std::string_view kCounters[] = {
    "bytes-decoded",
    "entries-projected",
    "expanded-vectors",
    "itemsets-emitted",
    "itemsets-total",
    "kernel.decode_varint_block.bytes",
    "kernel.decode_varint_block.calls",
    "kernel.encode_varint_block.bytes",
    "kernel.encode_varint_block.calls",
    "kernel.intersect_count.bytes",
    "kernel.intersect_count.calls",
    "kernel.intersect_sorted.bytes",
    "kernel.intersect_sorted.calls",
    "kernel.peel_prefixes.bytes",
    "kernel.peel_prefixes.calls",
    "partitions",
    "plan.backend.narrow",
    "plan.backend.wide",
    "plan.rank.single-path",
    "plan.root.conditional",
    "plan.root.eclat",
    "plan.root.fallback",
    "plan.root.topdown",
    "plan.subtree.eclat",
    "plan.subtree.pooled",
    "plan.subtree.single-path",
    "ranks",
    "ranks-processed",
    "resumed-ranks",
    "serve.buckets-scanned",
    "serve.deadline-exceeded",
    "serve.errors",
    "serve.requests",
    "shard.attempts",
    "shard.bytes-decoded",
    "shard.itemsets",
    "shard.relaunches",
    "shard.workers",
    "status.budget-exceeded",
    "status.cancelled",
    "status.completed",
    "status.deadline-exceeded",
    "status.unknown",
    "transactions",
    "vectors-inserted",
    "warmed-ranks",
};

constexpr bool is_registered_span_name(std::string_view name) {
  for (const std::string_view s : kSpans)
    if (s == name) return true;
  return false;
}

constexpr bool is_registered_counter_name(std::string_view name) {
  for (const std::string_view c : kCounters)
    if (c == name) return true;
  return false;
}

}  // namespace plt::obs::names
