#include "obs/histogram.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace plt::obs {

std::size_t LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns < 2) return 0;
  return static_cast<std::size_t>(std::bit_width(ns)) - 1;
}

std::uint64_t LatencyHistogram::bucket_floor_ns(std::size_t i) {
  if (i == 0) return 0;
  return std::uint64_t{1} << i;
}

void LatencyHistogram::record(std::uint64_t ns) {
  ++buckets_[bucket_index(ns)];
  ++count_;
  sum_ns_ += ns;
}

void LatencyHistogram::record_seconds(double seconds) {
  if (seconds <= 0.0) {
    record(0);
    return;
  }
  const double ns = seconds * 1e9;
  if (ns >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())) {
    record(std::numeric_limits<std::uint64_t>::max());
    return;
  }
  record(static_cast<std::uint64_t>(ns));
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

std::uint64_t LatencyHistogram::bucket(std::size_t i) const {
  return i < kBuckets ? buckets_[i] : 0;
}

std::uint64_t LatencyHistogram::percentile_ns(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target observation, 1-based; ceil so p = 0.5 of two
  // observations selects the first.
  auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      if (i + 1 >= kBuckets) return std::numeric_limits<std::uint64_t>::max();
      return (std::uint64_t{1} << (i + 1)) - 1;
    }
  }
  return std::numeric_limits<std::uint64_t>::max();
}

std::string LatencyHistogram::to_json() const {
  std::ostringstream out;
  out << "{\"count\":" << count_ << ",\"sum_ns\":" << sum_ns_
      << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) out << ',';
    first = false;
    out << "{\"floor_ns\":" << bucket_floor_ns(i)
        << ",\"count\":" << buckets_[i] << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace plt::obs
