// Latency histogram with fixed log-spaced buckets — the distribution
// counterpart of the monotonic counters in trace.hpp. Bucket boundaries are
// powers of two nanoseconds fixed at compile time, so two histograms
// recorded anywhere (different threads, different worker processes,
// different machines) merge deterministically by per-bucket addition:
// merge order cannot change the result, which is the same invariance rule
// the span trees follow (S23). Used for the per-shard wall-time
// distribution in bench_shard (E21) and the parallel miner's per-rank
// latencies; it also pre-stages the plt-serve SLO dashboards (ROADMAP
// item 2), where log-spaced buckets are the standard wire shape.
//
// Not wired into the PLT_SPAN macros: durations are non-deterministic, so
// histograms live in stats structs (ParallelResult, ShardReport, bench
// JSON), never in golden traces.
#pragma once

#include <cstdint>
#include <string>

namespace plt::obs {

class LatencyHistogram {
 public:
  /// bucket 0 holds [0, 2) ns; bucket i >= 1 holds [2^i, 2^(i+1)) ns.
  /// 64 buckets cover every representable uint64 nanosecond value.
  static constexpr std::size_t kBuckets = 64;

  /// Bucket index a value lands in (floor(log2(ns)), clamped to bucket 0).
  static std::size_t bucket_index(std::uint64_t ns);
  /// Smallest value of bucket `i`.
  static std::uint64_t bucket_floor_ns(std::size_t i);

  void record(std::uint64_t ns);
  /// Convenience for wall-clock seconds (negative clamps to zero).
  void record_seconds(double seconds);

  /// Per-bucket addition: associative, commutative, order-free — merging
  /// N worker histograms gives one deterministic result.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum_ns() const { return sum_ns_; }
  std::uint64_t bucket(std::size_t i) const;

  /// Upper bound of the bucket holding the p-quantile (p in [0, 1]); 0 when
  /// the histogram is empty. Quantiles from log buckets are bounds, not
  /// exact order statistics — good enough for SLO-style reporting.
  std::uint64_t percentile_ns(double p) const;

  /// The SLO accessor used by plt-serve and bench_serve: the q-quantile
  /// (q in [0, 1]) as the inclusive upper bound 2^(i+1)-1 of the log2
  /// bucket [2^i, 2^(i+1)) holding the q-th order statistic.
  ///
  /// Error bound: the true order statistic v lies in the same bucket, so
  /// result/2 < v <= result — the reported quantile overestimates by less
  /// than a factor of two, and never underestimates. (Bucket 0 is exact:
  /// it holds only 0 and 1 ns, reported as 1.) Empty histogram reports 0.
  std::uint64_t percentile(double q) const { return percentile_ns(q); }

  /// One-line JSON: {"count":N,"sum_ns":S,"buckets":[{"floor_ns":F,
  /// "count":C},...]} with only the occupied buckets listed, in ascending
  /// floor order — byte-stable for identical contents.
  std::string to_json() const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
};

}  // namespace plt::obs
