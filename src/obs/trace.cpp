// Recording + aggregation for the tracing layer. Per-thread recording is
// lock-free (each thread mutates only its own ThreadTrace); the only lock
// is the collector's registration mutex, taken once per thread per
// session. Aggregation happens after the traced work quiesced (the mine
// paths join their workers first), so reading the thread trees needs no
// synchronization beyond the joins' happens-before.
#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/thread_annotations.hpp"

namespace plt::obs {

namespace {

// Node of a per-thread aggregation tree. Names are the caller's static
// strings; child/counter lookup compares pointers first (same literal,
// same TU) and falls back to strcmp, so distinct literals with equal text
// still merge.
struct Node {
  const char* name;
  Node* parent;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<std::pair<const char*, std::uint64_t>> counters;
  std::vector<std::unique_ptr<Node>> children;

  Node(const char* n, Node* p) : name(n), parent(p) {}

  Node* child(const char* child_name) {
    for (auto& c : children)
      if (c->name == child_name || std::strcmp(c->name, child_name) == 0)
        return c.get();
    children.push_back(std::make_unique<Node>(child_name, this));
    return children.back().get();
  }

  void add(const char* counter_name, std::uint64_t delta) {
    for (auto& [name_, value] : counters)
      if (name_ == counter_name || std::strcmp(name_, counter_name) == 0) {
        value += delta;
        return;
      }
    counters.emplace_back(counter_name, delta);
  }
};

constexpr std::size_t kRingCapacity = 256;

}  // namespace

/// One thread's recording state: the aggregation tree rooted at a
/// synthetic node, the open-span cursor, and the event ring.
class ThreadTrace {
 public:
  ThreadTrace() : root_("trace", nullptr), current_(&root_) {}

  void enter(const char* name) {
    current_ = current_->child(name);
    ++current_->count;
    push_event(name, true);
  }

  void exit(std::uint64_t elapsed_ns) {
    if (current_ == &root_) {
      ++unbalanced_exits_;
      return;
    }
    push_event(current_->name, false);
    current_->total_ns += elapsed_ns;
    current_ = current_->parent;
  }

  void add(const char* name, std::uint64_t delta) {
    current_->add(name, delta);
  }

  const Node& root() const { return root_; }
  std::uint64_t unbalanced_exits() const { return unbalanced_exits_; }
  std::uint64_t open_spans() const {
    std::uint64_t depth = 0;
    for (const Node* n = current_; n != &root_; n = n->parent) ++depth;
    return depth;
  }
  std::uint64_t dropped_events() const {
    return ring_total_ > kRingCapacity ? ring_total_ - kRingCapacity : 0;
  }

  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    const std::size_t n = std::min(ring_total_, kRingCapacity);
    out.reserve(n);
    const std::size_t start = ring_total_ - n;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(ring_[(start + i) % kRingCapacity]);
    return out;
  }

 private:
  void push_event(const char* name, bool enter) {
    ring_[ring_total_ % kRingCapacity] = {name, enter, detail::now_ns()};
    ++ring_total_;
  }

  Node root_;
  Node* current_;
  std::uint64_t unbalanced_exits_ = 0;
  std::array<TraceEvent, kRingCapacity> ring_{};
  std::size_t ring_total_ = 0;
};

/// Collector state: owns every ThreadTrace registered under it.
class TraceCollectorImpl {
 public:
  ThreadTrace* register_thread() {
    const MutexLock lock(mutex_);
    threads_.push_back(std::make_unique<ThreadTrace>());
    return threads_.back().get();
  }

  template <typename Fn>
  void for_each_thread(Fn&& fn) const {
    const MutexLock lock(mutex_);
    for (const auto& t : threads_) fn(*t);
  }

 private:
  mutable Mutex mutex_;
  // The registry itself is guarded; the ThreadTraces it owns are not —
  // each is mutated only by its owning thread, and aggregation reads them
  // after the workers joined (see the file comment).
  std::vector<std::unique_ptr<ThreadTrace>> threads_ PLT_GUARDED_BY(mutex_);
};

namespace detail {

std::atomic<TraceCollectorImpl*> g_collector{nullptr};
// Bumped on every install/uninstall so a thread-local ThreadTrace cached
// from an earlier session can never be mistaken for one registered with
// the current collector (even if a new collector reuses the address).
std::atomic<std::uint64_t> g_epoch{0};

namespace {
struct ThreadSlot {
  std::uint64_t epoch = 0;
  ThreadTrace* trace = nullptr;
};
thread_local ThreadSlot t_slot;
}  // namespace

ThreadTrace* register_current_thread() {
  TraceCollectorImpl* collector = g_collector.load(std::memory_order_acquire);
  if (collector == nullptr) return nullptr;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (t_slot.epoch == epoch && t_slot.trace != nullptr) return t_slot.trace;
  t_slot.trace = collector->register_thread();
  t_slot.epoch = epoch;
  return t_slot.trace;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void span_enter(ThreadTrace* t, const char* name) { t->enter(name); }
void span_exit(ThreadTrace* t, std::uint64_t elapsed_ns) {
  t->exit(elapsed_ns);
}
void add_counter(ThreadTrace* t, const char* name, std::uint64_t delta) {
  t->add(name, delta);
}

}  // namespace detail

bool session_active() {
  return detail::g_collector.load(std::memory_order_acquire) != nullptr;
}

namespace {

std::atomic<int> g_runtime_enabled{-1};  // -1 = consult PLT_TRACE once

bool env_enabled() {
  const char* env = std::getenv("PLT_TRACE");
  if (env == nullptr) return false;
  const std::string value(env);
  return !(value.empty() || value == "0" || value == "off");
}

}  // namespace

bool enabled() {
#if !PLT_OBS_ENABLED
  return false;  // compile-time off: nothing would be recorded anyway
#endif
  int state = g_runtime_enabled.load(std::memory_order_acquire);
  if (state < 0) {
    state = env_enabled() ? 1 : 0;
    int expected = -1;
    if (!g_runtime_enabled.compare_exchange_strong(
            expected, state, std::memory_order_acq_rel,
            std::memory_order_acquire))
      state = expected;
  }
  return state == 1;
}

void set_enabled(bool on) {
  g_runtime_enabled.store(on ? 1 : 0, std::memory_order_release);
}

// ---- TraceNode queries ----

const TraceNode* TraceNode::child(std::string_view child_name) const {
  for (const TraceNode& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

const TraceNode* TraceNode::descendant(std::string_view path) const {
  const TraceNode* node = this;
  while (node != nullptr && !path.empty()) {
    const auto slash = path.find('/');
    const std::string_view head = path.substr(0, slash);
    node = node->child(head);
    path = slash == std::string_view::npos ? std::string_view{}
                                           : path.substr(slash + 1);
  }
  return node;
}

std::uint64_t TraceNode::counter(std::string_view counter_name) const {
  for (const auto& [name_, value] : counters)
    if (name_ == counter_name) return value;
  return 0;
}

std::uint64_t TraceNode::counter_total(std::string_view counter_name) const {
  std::uint64_t total = counter(counter_name);
  for (const TraceNode& c : children) total += c.counter_total(counter_name);
  return total;
}

std::uint64_t TraceNode::span_total() const {
  std::uint64_t total = count;
  for (const TraceNode& c : children) total += c.span_total();
  return total;
}

// ---- collector ----

namespace {

// Folds one per-thread node into the merged tree (recursive: matching
// names merge, new names append; ordering is fixed afterwards).
void merge_node(TraceNode& into, const Node& from) {
  into.count += from.count;
  into.total_ns += from.total_ns;
  for (const auto& [name, value] : from.counters) {
    bool found = false;
    for (auto& [mname, mvalue] : into.counters)
      if (mname == name) {
        mvalue += value;
        found = true;
        break;
      }
    if (!found) into.counters.emplace_back(name, value);
  }
  for (const auto& child : from.children) {
    TraceNode* slot = nullptr;
    for (TraceNode& c : into.children)
      if (c.name == child->name) {
        slot = &c;
        break;
      }
    if (slot == nullptr) {
      into.children.emplace_back();
      slot = &into.children.back();
      slot->name = child->name;
    }
    merge_node(*slot, *child);
  }
}

void sort_tree(TraceNode& node) {
  std::sort(node.counters.begin(), node.counters.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(node.children.begin(), node.children.end(),
            [](const TraceNode& a, const TraceNode& b) {
              return a.name < b.name;
            });
  for (TraceNode& c : node.children) sort_tree(c);
}

}  // namespace

TraceCollector::TraceCollector()
    : impl_(std::make_unique<TraceCollectorImpl>()) {}

TraceCollector::~TraceCollector() {
  if (installed_) uninstall();
}

void TraceCollector::install() {
  if (installed_) return;
  prev_ = detail::g_collector.load(std::memory_order_acquire);
  detail::g_epoch.fetch_add(1, std::memory_order_acq_rel);
  detail::g_collector.store(impl_.get(), std::memory_order_release);
  installed_ = true;
}

void TraceCollector::uninstall() {
  if (!installed_) return;
  detail::g_epoch.fetch_add(1, std::memory_order_acq_rel);
  detail::g_collector.store(prev_, std::memory_order_release);
  prev_ = nullptr;
  installed_ = false;
}

TraceNode TraceCollector::aggregate() const {
  TraceNode root;
  root.name = "trace";
  impl_->for_each_thread(
      [&](const ThreadTrace& t) { merge_node(root, t.root()); });
  sort_tree(root);
  return root;
}

TraceHealth TraceCollector::health() const {
  TraceHealth h;
  impl_->for_each_thread([&](const ThreadTrace& t) {
    ++h.threads;
    h.unbalanced_exits += t.unbalanced_exits();
    h.open_spans += t.open_spans();
    h.dropped_events += t.dropped_events();
  });
  return h;
}

std::vector<std::vector<TraceEvent>> TraceCollector::thread_events() const {
  std::vector<std::vector<TraceEvent>> out;
  impl_->for_each_thread(
      [&](const ThreadTrace& t) { out.push_back(t.events()); });
  return out;
}

// ---- session ----

TraceSession::TraceSession() { collector_.install(); }

TraceSession::~TraceSession() {
  if (!finished_) collector_.uninstall();
}

std::shared_ptr<const TraceNode> TraceSession::finish() {
  if (!finished_) {
    collector_.uninstall();
    tree_ = std::make_shared<const TraceNode>(collector_.aggregate());
    finished_ = true;
  }
  return tree_;
}

}  // namespace plt::obs
