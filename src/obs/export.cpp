// Trace export: canonical JSON (byte-stable when masked — the golden-trace
// tests compare the masked rendering verbatim) and the folded stack format
// flamegraph.pl / speedscope consume directly.
#include <sstream>

#include "obs/trace.hpp"

namespace plt::obs {

namespace {

void escape_into(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

void node_json(std::ostream& os, const TraceNode& node, bool masked,
               int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << "{\"name\": \"";
  escape_into(os, node.name);
  os << "\", \"count\": " << node.count;
  if (!masked) os << ", \"ns\": " << node.total_ns;
  if (!node.counters.empty()) {
    os << ", \"counters\": {";
    for (std::size_t i = 0; i < node.counters.size(); ++i) {
      if (i) os << ", ";
      os << '"';
      escape_into(os, node.counters[i].first);
      os << "\": " << node.counters[i].second;
    }
    os << '}';
  }
  if (!node.children.empty()) {
    os << ", \"children\": [\n";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      node_json(os, node.children[i], masked, indent + 1);
      os << (i + 1 < node.children.size() ? ",\n" : "\n");
    }
    os << pad << ']';
  }
  os << '}';
}

void folded_lines(std::ostream& os, const TraceNode& node,
                  const std::string& prefix, bool masked) {
  const std::string stack =
      prefix.empty() ? node.name : prefix + ';' + node.name;
  if (masked) {
    if (node.count > 0) os << stack << ' ' << node.count << '\n';
  } else {
    // Folded values are exclusive (self) times so the flamegraph's widths
    // add up: children's time is subtracted from the parent's.
    std::uint64_t child_ns = 0;
    for (const TraceNode& c : node.children) child_ns += c.total_ns;
    const std::uint64_t self_ns =
        node.total_ns > child_ns ? node.total_ns - child_ns : 0;
    if (self_ns > 0 || node.children.empty())
      os << stack << ' ' << self_ns << '\n';
  }
  for (const TraceNode& c : node.children) folded_lines(os, c, stack, masked);
}

}  // namespace

std::string to_json(const TraceNode& root,
                    const TraceExportOptions& options) {
  std::ostringstream os;
  os << "{\n  \"format\": \"plt-trace-v1\",\n  \"masked\": "
     << (options.mask_durations ? "true" : "false") << ",\n";
  if (!options.mask_durations && !options.backend.empty()) {
    os << "  \"backend\": \"";
    escape_into(os, options.backend);
    os << "\",\n";
  }
  os << "  \"root\":\n";
  node_json(os, root, options.mask_durations, 1);
  os << "\n}\n";
  return os.str();
}

std::string to_folded(const TraceNode& root, bool mask_durations) {
  std::ostringstream os;
  folded_lines(os, root, "", mask_durations);
  return os.str();
}

}  // namespace plt::obs
