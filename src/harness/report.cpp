#include "harness/report.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace plt::harness {

void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& title, const std::string& paper_anchor) {
  os << '\n'
     << "==== " << experiment_id << ": " << title << " ====\n"
     << "     paper anchor: " << paper_anchor << '\n';
}

void print_sweep(std::ostream& os, const std::string& title,
                 const std::vector<Cell>& cells, bool csv) {
  os << "-- " << title << " --\n";
  Table table({"dataset", "minsup", "algorithm", "build", "mine", "total",
               "structure", "frequent", "maxlen", "status"});
  for (const Cell& cell : cells) {
    table.add_row({cell.dataset, std::to_string(cell.min_support),
                   core::algorithm_name(cell.algorithm),
                   format_duration(cell.build_seconds),
                   format_duration(cell.mine_seconds),
                   format_duration(cell.total_seconds),
                   format_bytes(cell.structure_bytes),
                   std::to_string(cell.frequent_itemsets),
                   std::to_string(cell.max_length),
                   cell.failed ? "GUARD" : "ok"});
  }
  os << table.to_text();
  if (csv) os << "\ncsv:\n" << table.to_csv();
}

void print_winners(std::ostream& os, const std::vector<Cell>& cells) {
  std::map<Count, const Cell*> best;
  for (const Cell& cell : cells) {
    if (cell.failed) continue;
    auto& slot = best[cell.min_support];
    if (!slot || cell.total_seconds < slot->total_seconds) slot = &cell;
  }
  os << "winners by total time:\n";
  for (const auto& [support, cell] : best) {
    os << "  minsup " << support << ": "
       << core::algorithm_name(cell->algorithm) << " ("
       << format_duration(cell->total_seconds) << ")\n";
  }
}

}  // namespace plt::harness
