#include "harness/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "harness/experiment.hpp"

namespace plt::harness {

tdb::Database scaled_dataset(const std::string& name, double scale) {
  for (const auto& spec : datagen::dataset_registry()) {
    if (spec.name != name) continue;
    const auto transactions = std::max<std::size_t>(
        100, static_cast<std::size_t>(
                 std::llround(static_cast<double>(spec.default_transactions) *
                              scale)));
    return spec.generate(transactions, spec.default_seed);
  }
  throw std::out_of_range("unknown dataset: " + name);
}

std::vector<Count> support_grid(const tdb::Database& db,
                                const std::vector<double>& fractions) {
  std::vector<Count> grid;
  grid.reserve(fractions.size());
  for (const double f : fractions) grid.push_back(absolute_support(db, f));
  std::sort(grid.begin(), grid.end(), std::greater<>());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

}  // namespace plt::harness
