// Experiment-facing dataset helpers: generate a registered dataset (scaled
// for the bench budget) and derive sensible absolute-support grids from
// relative fractions.
#pragma once

#include <string>
#include <vector>

#include "datagen/registry.hpp"
#include "tdb/database.hpp"

namespace plt::harness {

/// Generates the named dataset scaled by `scale` (1.0 = registry default).
tdb::Database scaled_dataset(const std::string& name, double scale = 1.0);

/// Converts relative supports to an absolute grid for `db`, deduplicated
/// and sorted descending (high support first, the conventional sweep order).
std::vector<Count> support_grid(const tdb::Database& db,
                                const std::vector<double>& fractions);

}  // namespace plt::harness
