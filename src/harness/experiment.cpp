#include "harness/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/topdown.hpp"

namespace plt::harness {

Count absolute_support(const tdb::Database& db, double fraction) {
  const double raw = fraction * static_cast<double>(db.size());
  return std::max<Count>(1, static_cast<Count>(std::ceil(raw)));
}

std::vector<Cell> run_sweep(const SweepConfig& config) {
  PLT_ASSERT(config.db != nullptr, "sweep needs a database");
  std::vector<Cell> cells;
  for (const Count support : config.supports) {
    std::optional<core::FrequentItemsets> reference;
    core::Algorithm reference_algorithm{};
    for (const core::Algorithm algorithm : config.algorithms) {
      Cell cell;
      cell.dataset = config.dataset_name;
      cell.min_support = support;
      cell.algorithm = algorithm;
      try {
        core::MineResult mined =
            core::mine(*config.db, support, algorithm, config.mine_options);
        cell.build_seconds = mined.build_seconds;
        cell.mine_seconds = mined.mine_seconds;
        cell.total_seconds = mined.build_seconds + mined.mine_seconds;
        cell.structure_bytes = mined.structure_bytes;
        cell.frequent_itemsets = mined.itemsets.size();
        cell.max_length = mined.itemsets.max_length();
        if (config.cross_check) {
          if (!reference) {
            reference = mined.itemsets;
            reference_algorithm = algorithm;
          } else if (!core::FrequentItemsets::equal(*reference,
                                                    mined.itemsets)) {
            throw std::runtime_error(
                std::string("cross-check failed: ") +
                core::algorithm_name(algorithm) + " disagrees with " +
                core::algorithm_name(reference_algorithm) + " on " +
                config.dataset_name + " at support " +
                std::to_string(support));
          }
        }
      } catch (const core::TopDownOverflow& overflow) {
        cell.failed = true;
        cell.failure_reason = overflow.what();
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

}  // namespace plt::harness
