// Rendering of sweep results: one aligned table per experiment plus an
// optional CSV block, in the style of FIMI-era evaluation sections.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace plt::harness {

/// Prints a banner + the per-cell table for an experiment.
void print_sweep(std::ostream& os, const std::string& title,
                 const std::vector<Cell>& cells, bool csv = false);

/// Prints an experiment banner (id, title, paper anchor).
void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& title, const std::string& paper_anchor);

/// Per-support "who wins" summary: fastest algorithm per support level.
void print_winners(std::ostream& os, const std::vector<Cell>& cells);

}  // namespace plt::harness
