// Shared --trace / --trace-folded flags for the CLI and every bench
// binary: either flag force-enables runtime tracing and installs one
// TraceSession around the whole run, so every mine() call in the process
// feeds a single combined tree (the facades' per-call sessions stand down,
// see obs::AutoSession). The JSON export carries the active kernel backend
// as metadata; the folded export feeds flamegraph tooling directly.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "kernels/kernels.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"

namespace plt::harness {

/// Owns the run-wide trace session requested by `--trace FILE` (JSON
/// export) and/or `--trace-folded FILE` (collapsed stacks). Inactive — and
/// free — when neither flag is present. write() (or the destructor)
/// finishes the session and writes the requested files.
class TraceScope {
 public:
  explicit TraceScope(const Args& args)
      : json_path_(args.get("trace", "")),
        folded_path_(args.get("trace-folded", "")) {
    if (!active()) return;
    obs::set_enabled(true);
    session_.emplace();
  }

  ~TraceScope() { write(); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const {
    return !json_path_.empty() || !folded_path_.empty();
  }

  /// Finishes the session and writes the files; idempotent. Returns false
  /// (after a diagnostic on stderr) if any file could not be written.
  bool write() {
    if (!session_) return true;
    root_ = session_->finish();
    session_.reset();
    bool ok = true;
    if (!json_path_.empty()) {
      obs::TraceExportOptions options;
      options.backend = kernels::active().name;
      ok &= write_file(json_path_, obs::to_json(*root_, options));
    }
    if (!folded_path_.empty())
      ok &= write_file(folded_path_, obs::to_folded(*root_));
    return ok;
  }

  /// The aggregated tree; null until write() has run (or when inactive).
  const std::shared_ptr<const obs::TraceNode>& root() const { return root_; }

 private:
  static bool write_file(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    out << text;
    out.flush();
    if (!out) {
      std::cerr << "error: cannot write trace file " << path << '\n';
      return false;
    }
    return true;
  }

  std::string json_path_;
  std::string folded_path_;
  std::optional<obs::TraceSession> session_;
  std::shared_ptr<const obs::TraceNode> root_;
};

/// Compact single-line summary of a trace for embedding into a bench
/// run's JSON report: total span count plus the top-level phase spans with
/// their counts and durations. Not the full tree — benches point at
/// --trace for that.
inline std::string trace_summary_json(const obs::TraceNode& root) {
  std::ostringstream out;
  out << "{\"backend\": \"" << kernels::active().name
      << "\", \"spans\": " << root.span_total() << ", \"phases\": {";
  bool first = true;
  for (const obs::TraceNode& child : root.children) {
    if (!first) out << ", ";
    first = false;
    out << '"' << child.name << "\": {\"count\": " << child.count
        << ", \"ns\": " << child.total_ns << '}';
  }
  out << "}}";
  return out.str();
}

}  // namespace plt::harness
