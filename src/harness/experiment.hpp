// Experiment driver shared by the bench binaries: runs a set of algorithms
// over a dataset × minimum-support grid and collects one row per cell
// (runtime, structure size, peak RSS, result counts), cross-checking that
// all algorithms in a cell agree exactly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/miner.hpp"
#include "tdb/database.hpp"

namespace plt::harness {

struct Cell {
  std::string dataset;
  Count min_support = 0;
  core::Algorithm algorithm{};
  double build_seconds = 0.0;
  double mine_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t structure_bytes = 0;
  std::size_t frequent_itemsets = 0;
  std::size_t max_length = 0;
  bool failed = false;          ///< guard trip (e.g. top-down overflow)
  std::string failure_reason;
};

struct SweepConfig {
  std::string dataset_name;
  const tdb::Database* db = nullptr;  ///< must outlive the sweep
  std::vector<Count> supports;        ///< absolute minimum supports
  std::vector<core::Algorithm> algorithms;
  core::MineOptions mine_options;
  /// Verify that every algorithm in a cell produces identical itemsets.
  bool cross_check = true;
};

/// Runs the sweep; rows are ordered (support, algorithm).
/// Throws std::runtime_error if cross-checking finds a disagreement.
std::vector<Cell> run_sweep(const SweepConfig& config);

/// Converts a relative support (fraction of |D|) to an absolute count >= 1.
Count absolute_support(const tdb::Database& db, double fraction);

}  // namespace plt::harness
