// Shared --backend flag for every bench/example binary: forwards the name
// to kernels::select_backend so a whole sweep can be pinned to the scalar
// reference or a specific SIMD backend. When the flag is absent the
// PLT_KERNEL_BACKEND environment variable (read at first dispatch) decides.
#pragma once

#include <iostream>
#include <string>

#include "kernels/kernels.hpp"
#include "util/args.hpp"

namespace plt::harness {

/// Applies `--backend=scalar|sse42|avx2|simd|auto`. Returns false (after
/// printing a diagnostic) on unknown or unavailable names, so callers can
/// `return 2` and the bad flag can't silently bench the wrong backend.
/// `announce` controls the success line benches print; the CLI passes
/// false to keep machine-readable stdout (CSV, itemset dumps) clean.
inline bool apply_backend_flag(const Args& args, bool announce = true) {
  const std::string name = args.get("backend", "");
  if (!kernels::select_backend(name)) {
    std::cerr << args.program() << ": unknown or unavailable kernel backend \""
              << name << "\" (expected scalar, simd, sse42, avx2 or auto)\n";
    return false;
  }
  if (announce)
    std::cout << "kernel backend: " << kernels::active().name << "\n";
  return true;
}

}  // namespace plt::harness
