// Shared --backend / --plan flags for every bench/example binary: forward
// the names to kernels::select_backend / core::select_plan so a whole
// sweep can be pinned to the scalar reference, a specific SIMD backend, or
// the adaptive execution planner. When a flag is absent the matching
// environment variable (PLT_KERNEL_BACKEND / PLT_PLAN, read at first use)
// decides.
#pragma once

#include <iostream>
#include <string>

#include "core/planner.hpp"
#include "kernels/kernels.hpp"
#include "util/args.hpp"

namespace plt::harness {

/// Applies `--backend=scalar|sse42|avx2|simd|auto`. Returns false (after
/// printing a diagnostic) on unknown or unavailable names, so callers can
/// `return 2` and the bad flag can't silently bench the wrong backend.
/// `announce` controls the success line benches print; the CLI passes
/// false to keep machine-readable stdout (CSV, itemset dumps) clean.
inline bool apply_backend_flag(const Args& args, bool announce = true) {
  const std::string name = args.get("backend", "");
  if (!kernels::select_backend(name)) {
    std::cerr << args.program() << ": unknown or unavailable kernel backend \""
              << name << "\" (expected scalar, simd, sse42, avx2 or auto)\n";
    return false;
  }
  if (announce)
    std::cout << "kernel backend: " << kernels::active().name << "\n";
  return true;
}

/// Applies `--plan=fixed|adaptive`. Returns false (after printing a
/// diagnostic) on unknown names, so callers can `return 2` and a typo'd
/// flag can't silently bench the wrong execution plan. Same announce
/// convention as apply_backend_flag.
inline bool apply_plan_flag(const Args& args, bool announce = true) {
  const std::string name = args.get("plan", "");
  if (!core::select_plan(name)) {
    std::cerr << args.program() << ": unknown --plan \"" << name
              << "\" (expected fixed or adaptive)\n";
    return false;
  }
  if (announce)
    std::cout << "execution plan: " << core::plan_name(core::active_plan())
              << "\n";
  return true;
}

}  // namespace plt::harness
